"""The HTTP front end: admission control, caching, routing, lifecycle.

``SparqlServer`` wires a threaded HTTP listener to the worker pool:
each connection is handled on its own thread, which (1) parses the
protocol request, (2) passes admission control — a bounded in-flight
limit plus a bounded wait queue, everything beyond which is shed with
an immediate 503 — (3) consults the generation-keyed result cache, and
only then (4) leases a worker.  Cache hits therefore cost no worker,
no engine and no serializer; sheds cost almost nothing at all, which
is what keeps an overloaded endpoint responsive.
"""

from __future__ import annotations

import json
import random
import re
import signal
import socket
import sys
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Optional, Tuple

from .. import faults as _faults
from ..obs import SlowQueryLog, TemplateRegistry
from ..obs import trace as _obs_trace
from ..sparql.errors import (
    QueryTimeoutError,
    SparqlError,
    SparqlSyntaxError,
    UnsupportedFeatureError,
)
from ..storage.wal import WalCorruptError, WriteAheadLog
from .cache import CachedResult, ResultCache
from .config import ServerConfig
from .metrics import ServerMetrics
from .pool import PoolError, WorkerPool, WorkerReply, _open_store
from .protocol import (
    FORMAT_MEDIA_TYPES,
    ProtocolError,
    parse_sparql_request,
    parse_update_request,
)

__all__ = ["AdmissionController", "SparqlServer", "serve"]

#: WorkerReply.kind → HTTP status for non-ok outcomes.
_REPLY_STATUS = {
    "timeout": 504,
    "syntax": 400,
    "unsupported": 400,
    "error": 500,
    "shed": 503,
}

#: Characters a client-supplied ``X-Request-Id`` may contain; anything
#: else (or an over-long id) is replaced with a minted one, so log
#: lines and response headers never carry unvetted bytes.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def _splice_extensions(payload: bytes, repro: dict) -> Optional[bytes]:
    """Attach ``{"extensions": {"repro": ...}}`` to a JSON result payload.

    Returns None (caller serves the original bytes) when the payload is
    not a JSON object — extension splicing must never break a response.
    """
    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    extensions = document.setdefault("extensions", {})
    if not isinstance(extensions, dict):
        return None
    extensions["repro"] = repro
    return (json.dumps(document) + "\n").encode("utf-8")


class AdmissionController:
    """Bounded concurrency with a bounded, time-limited wait queue.

    ``max_inflight`` permits execute concurrently; up to ``queue_size``
    further requests wait (at most ``queue_wait`` seconds) for a slot;
    everything beyond that is refused instantly — load past the cliff
    costs a constant-time 503, not a thread parked on a lock.
    """

    def __init__(self, max_inflight: int, queue_size: int, queue_wait: float):
        self._slots = threading.Semaphore(max_inflight)
        self._queue_size = queue_size
        self._queue_wait = queue_wait
        self._lock = threading.Lock()
        self._waiting = 0

    def acquire(self) -> bool:
        if self._slots.acquire(blocking=False):
            return True
        with self._lock:
            if self._waiting >= self._queue_size:
                return False
            self._waiting += 1
        try:
            return self._slots.acquire(timeout=self._queue_wait)
        finally:
            with self._lock:
                self._waiting -= 1

    def release(self) -> None:
        self._slots.release()

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server`` is the :class:`_HTTPServer` below."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-sparql"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def state(self) -> "SparqlServer":
        return self.server.state  # type: ignore[attr-defined]

    def setup(self) -> None:
        # Arm the per-connection socket timeout before any read: slow
        # or stalled clients get disconnected instead of parking this
        # handler thread (and its fd) forever — admission control only
        # guards execution, this guards ingestion.
        self.timeout = self.state.config.socket_timeout
        super().setup()

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.state.config.log_requests:
            sys.stderr.write(
                "%s - - [%s] %s\n" % (self.address_string(), self.log_date_time_string(), fmt % args)
            )

    def _respond(
        self,
        status: int,
        content_type: str,
        body: bytes,
        extra: Optional[Tuple[Tuple[str, str], ...]] = None,
    ) -> None:
        # wfile is unbuffered, so even the status line hits the socket:
        # the whole emission is guarded against clients that hung up
        # mid-query (no stderr traceback, metrics still recorded).
        try:
            if _faults.ACTIVE is not None:
                # An injected io_error here stands in for the client
                # hanging up mid-response — same handler below.
                _faults.ACTIVE.fire("server.respond")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            # Every response names the store generation it was served
            # against (clients correlate reads with their writes) and
            # echoes the request id minted/honored at ingress.
            self.send_header("X-Repro-Generation", str(self.state.generation))
            request_id = getattr(self, "repro_request_id", None)
            if request_id:
                self.send_header("X-Repro-Request-Id", request_id)
            for name, value in extra or ():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except OSError:  # client went away
            self.close_connection = True
        self.state.metrics.record_response(status)

    def _respond_error(self, status: int, message: str) -> None:
        body = json.dumps({"error": message}) + "\n"
        extra = (("Retry-After", "1"),) if status == 503 else None
        self._respond(status, "application/json", body.encode("utf-8"), extra)

    def _mint_request_id(self) -> str:
        """Honor a well-formed client ``X-Request-Id``, else mint one."""
        supplied = self.headers.get("X-Request-Id", "")
        if supplied and _REQUEST_ID_RE.match(supplied):
            return supplied
        return uuid.uuid4().hex[:16]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self.repro_request_id = self._mint_request_id()
        if self.headers.get("Content-Length") not in (None, "0") or self.headers.get(
            "Transfer-Encoding"
        ):
            # A GET body would sit unread in the keep-alive stream and
            # be parsed as the next request line — reject it outright.
            self._respond_error(400, "GET requests must not carry a body")
            self.close_connection = True
            return
        path, _, query_string = self.path.partition("?")
        if path == "/sparql":
            self._handle_sparql("GET", query_string, b"")
        elif path == "/healthz":
            self._handle_healthz()
        elif path == "/metrics":
            self._handle_metrics()
        elif path == "/debug/templates":
            self._handle_templates(query_string)
        else:
            self._respond_error(404, f"no route for {path}")

    def do_POST(self) -> None:  # noqa: N802
        self.repro_request_id = self._mint_request_id()
        path, _, query_string = self.path.partition("?")
        if path not in ("/sparql", "/update"):
            self._respond_error(404, f"no route for {path}")
            return
        if self.headers.get("Transfer-Encoding"):
            # Bodies are only read by Content-Length; leaving chunked
            # framing unconsumed would desync the keep-alive stream.
            self._respond_error(411, "chunked transfer encoding not supported")
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._respond_error(400, "bad Content-Length")
            self.close_connection = True
            return
        if length < 0:
            # read(-1) would block on the open socket until the client
            # hangs up — refuse instead.
            self._respond_error(400, "bad Content-Length")
            self.close_connection = True
            return
        if length > self.state.config.max_body_bytes:
            # Refuse before buffering: admission control guards query
            # *execution*; this guards request *ingestion*.
            self._respond_error(413, "request body too large")
            self.close_connection = True
            return
        try:
            body = self.rfile.read(length) if length else b""
        except socket.timeout:
            # Promised body never arrived within the socket timeout.
            self.close_connection = True
            return
        if path == "/update":
            self._handle_update(body)
        else:
            self._handle_sparql("POST", query_string, body)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_sparql(self, method: str, query_string: str, body: bytes) -> None:
        state = self.state
        try:
            request = parse_sparql_request(
                method, query_string, self.headers, body, state.config.formats
            )
        except ProtocolError as exc:
            self._respond_error(exc.status, str(exc))
            return

        request_id = self.repro_request_id
        trace_header = self.headers.get("X-Repro-Trace", "")
        trace_requested = trace_header.strip().lower() in ("1", "true", "yes")
        sampled = (
            not trace_requested
            and state.config.trace_sample > 0.0
            and random.random() < state.config.trace_sample
        )
        tracer: Optional[_obs_trace.Tracer] = None
        if trace_requested or sampled:
            # A request-*local* tracer, never the armed process global:
            # the parent serves many threads at once, while the global
            # belongs to one-query-at-a-time processes (CLI, workers).
            # Worker spans come back in the reply meta and are grafted
            # under this tree.
            tracer = _obs_trace.Tracer(
                "request",
                request_id=request_id,
                method=method,
                format=request.format,
            )

        started = perf_counter()
        # The cache is consulted *before* admission control: a hit
        # costs microseconds and no worker, so popular queries keep
        # answering precisely when the execution slots are saturated.
        if not state.generation_mixed:
            if tracer is not None:
                tracer.begin("cache_lookup")
            try:
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.fire("cache.get")
                cached = state.cache.get(
                    state.generation, request.format, request.query
                )
            except OSError:
                # A failing cache lookup degrades to a miss — the cache
                # is an accelerator, never a dependency.
                cached = None
            if tracer is not None:
                tracer.end(outcome="hit" if cached is not None else "miss")
            if cached is not None:
                self._finish_cached(request, cached, started, tracer, trace_requested, sampled)
                return
        if not state.admission.acquire():
            state.metrics.record_shed()
            self._respond_error(503, "server saturated; request shed")
            return
        state.metrics.enter()
        try:
            if tracer is not None:
                tracer.begin("pool")
            reply = state.pool.execute(
                request.query,
                request.format,
                request_id=request_id,
                trace=tracer is not None,
            )
            if tracer is not None:
                # The worker's span tree nests under the pool span; the
                # pool span's extra time is lease, pipe and relay cost.
                tracer.graft(reply.meta.get("trace") if reply.meta else None)
                tracer.end(kind=reply.kind)
            self._finish_executed(request, reply, started, tracer, trace_requested, sampled)
        finally:
            state.metrics.leave()
            state.admission.release()

    def _finish_cached(
        self,
        request,
        cached: CachedResult,
        started: float,
        tracer: "Optional[_obs_trace.Tracer]",
        trace_requested: bool,
        sampled: bool,
    ) -> None:
        """Serve a result-cache hit, with counters and trace attached."""
        state = self.state
        trace_tree = tracer.finish() if tracer is not None else None
        payload = cached.payload
        if trace_requested and request.format == "json":
            spliced = _splice_extensions(
                payload,
                {
                    "request_id": self.repro_request_id,
                    "cache": "hit",
                    "generation": state.generation,
                    "exec_counters": cached.exec_counters or {},
                    "trace": trace_tree,
                },
            )
            if spliced is not None:
                payload = spliced
        self._respond(200, cached.content_type, payload, (("X-Repro-Cache", "hit"),))
        seconds = perf_counter() - started
        # The entry's recorded counters go to the *client* (hot queries
        # no longer silently under-report) but are not folded into the
        # /metrics exec totals again: the miss that computed the entry
        # already counted that work once.
        state.metrics.record_query(
            "hit", seconds, cached.row_count, cached.join_space
        )
        template = cached.template if isinstance(cached.template, dict) else None
        if template is not None:
            state.templates.observe(
                template.get("hash"),
                template.get("text"),  # type: ignore[arg-type]
                seconds,
                cached.row_count,
                cached.exec_counters,
            )
        self._maybe_slowlog(
            request.query,
            seconds * 1000.0,
            rows=cached.row_count,
            template=template.get("hash") if template else None,  # type: ignore[union-attr]
            counters=cached.exec_counters,
            trace=trace_tree,
            sampled=sampled,
        )

    def _finish_executed(
        self,
        request,
        reply: WorkerReply,
        started: float,
        tracer: "Optional[_obs_trace.Tracer]" = None,
        trace_requested: bool = False,
        sampled: bool = False,
    ) -> None:
        state = self.state
        request_id = getattr(self, "repro_request_id", None)
        if reply.kind != "ok":
            if reply.kind == "timeout":
                state.metrics.record_timeout()
            if reply.kind == "shed":
                state.metrics.record_shed()
            # Opt-in stale-while-error: when execution failed outright
            # ("error": a dead/failing worker; "shed": no capacity), a
            # previously cached answer — any generation — beats a 5xx.
            # Timeouts are excluded: the query is too expensive, and
            # stale data would mask that signal.
            if state.config.stale_while_error and reply.kind in ("error", "shed"):
                stale = state.cache.get_stale(request.format, request.query)
                if stale is not None:
                    self._respond(
                        200,
                        stale.content_type,
                        stale.payload,
                        (("X-Repro-Stale", "1"),),
                    )
                    state.metrics.record_stale_served()
                    state.metrics.record_query(
                        "stale", perf_counter() - started, stale.row_count, stale.join_space
                    )
                    return
            trace_tree = tracer.finish() if tracer is not None else None
            self._maybe_slowlog(
                request.query,
                (perf_counter() - started) * 1000.0,
                trace=trace_tree,
                sampled=sampled,
                timed_out=(reply.kind == "timeout"),
            )
            if trace_requested and trace_tree is not None:
                # A timed-out query's reply meta carried the worker's
                # *partial* trace (open spans marked aborted); return it
                # with the error so "what did it manage to do" is
                # answerable from the 504 itself.
                body = json.dumps(
                    {
                        "error": reply.message,
                        "extensions": {
                            "repro": {"request_id": request_id, "trace": trace_tree}
                        },
                    }
                ) + "\n"
                self._respond(
                    _REPLY_STATUS.get(reply.kind, 500),
                    "application/json",
                    body.encode("utf-8"),
                )
                return
            self._respond_error(_REPLY_STATUS.get(reply.kind, 500), reply.message)
            return
        content_type = FORMAT_MEDIA_TYPES[request.format]
        rows = int(reply.meta.get("rows", 0))  # type: ignore[arg-type]
        join_space = float(reply.meta.get("join_space", 0.0))  # type: ignore[arg-type]
        exec_counters = reply.meta.get("exec")
        if not isinstance(exec_counters, dict):
            exec_counters = None
        template = reply.meta.get("template")
        if not isinstance(template, dict):
            template = None
        # Cache under the generation the worker *actually served* (a
        # respawned worker may have reopened a rebuilt snapshot); once
        # drift is detected the cache is disabled entirely, so mixed
        # data versions are never served from it.
        served_generation = int(reply.meta.get("generation", state.generation))  # type: ignore[arg-type]
        if not state.generation_mixed:
            try:
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.fire("cache.put")
                state.cache.put(
                    served_generation,
                    request.format,
                    request.query,
                    # The original payload (never the trace-spliced
                    # variant) plus the counters/template a future hit
                    # replays to its client.
                    CachedResult(
                        reply.payload,
                        content_type,
                        rows,
                        join_space,
                        exec_counters=exec_counters,
                        template=template,
                    ),
                )
            except OSError:
                pass  # a result that cannot be cached is still served
        trace_tree = tracer.finish() if tracer is not None else None
        payload = reply.payload
        if trace_requested and request.format == "json":
            spliced = _splice_extensions(
                payload,
                {
                    "request_id": request_id,
                    "cache": "miss",
                    "generation": served_generation,
                    "exec_counters": exec_counters or {},
                    "trace": trace_tree,
                },
            )
            if spliced is not None:
                payload = spliced
        self._respond(200, content_type, payload, (("X-Repro-Cache", "miss"),))
        fault_counts = reply.meta.get("faults")
        if isinstance(fault_counts, dict) and fault_counts:
            state.metrics.record_fault_injections(fault_counts)
        seconds = perf_counter() - started
        state.metrics.record_query(
            "miss",
            seconds,
            rows,
            join_space,
            exec_counters,
        )
        if template is not None:
            state.templates.observe(
                template.get("hash"),
                template.get("text"),  # type: ignore[arg-type]
                seconds,
                rows,
                exec_counters,
            )
        self._maybe_slowlog(
            request.query,
            seconds * 1000.0,
            rows=rows,
            template=template.get("hash") if template else None,  # type: ignore[union-attr]
            counters=exec_counters,
            trace=trace_tree,
            sampled=sampled,
        )

    def _maybe_slowlog(
        self,
        query: str,
        total_ms: float,
        *,
        kind: str = "query",
        rows: Optional[int] = None,
        template=None,
        counters=None,
        trace=None,
        sampled: bool = False,
        timed_out: bool = False,
    ) -> None:
        """Append to the slow-query log when this request qualifies."""
        state = self.state
        log = state.slowlog
        if log is None:
            return
        slow_ms = state.config.slow_query_ms
        if timed_out:
            reason = "timeout"
        elif slow_ms > 0 and total_ms >= slow_ms:
            reason = "slow"
        elif sampled:
            reason = "sample"
        else:
            return
        log.record(
            reason,
            getattr(self, "repro_request_id", None),
            query,
            total_ms,
            kind=kind,
            rows=rows,
            template=template if isinstance(template, str) else None,
            counters=counters if isinstance(counters, dict) else None,
            trace=trace,
        )

    def _handle_update(self, body: bytes) -> None:
        """``POST /update`` — apply a SPARQL 1.1 UPDATE to the live fleet."""
        state = self.state
        started = perf_counter()
        try:
            text = parse_update_request("POST", self.headers, body)
        except ProtocolError as exc:
            self._respond_error(exc.status, str(exc))
            return
        try:
            document = state.apply_update(text)
        except SparqlSyntaxError as exc:
            self._respond_error(400, f"syntax error: {exc}")
            return
        except UnsupportedFeatureError as exc:
            self._respond_error(400, str(exc))
            return
        except QueryTimeoutError as exc:
            self._respond_error(504, str(exc))
            return
        except SparqlError as exc:
            self._respond_error(400, str(exc))
            return
        except (OSError, PoolError) as exc:
            # Includes injected delta.apply faults: the write-path site
            # fires before any mutation, so the store is unchanged and
            # the client may simply retry.
            self._respond_error(500, f"update failed: {exc}")
            return
        # Write observability: what changed, plus how deep the unpersisted
        # delta and the respawn replay log currently run.
        document["request_id"] = self.repro_request_id
        document["replay_log"] = state.pool.pending_replay
        body_bytes = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._respond(200, "application/json", body_bytes)
        self._maybe_slowlog(
            text,
            (perf_counter() - started) * 1000.0,
            kind="update",
            rows=int(document.get("added", 0)) + int(document.get("removed", 0)),
        )

    def _handle_templates(self, query_string: str) -> None:
        """``GET /debug/templates`` — the per-template stats registry."""
        limit: Optional[int] = None
        for part in query_string.split("&"):
            name, _, value = part.partition("=")
            if name == "limit":
                try:
                    limit = max(0, int(value))
                except ValueError:
                    self._respond_error(400, "limit must be an integer")
                    return
        document = self.state.templates.snapshot(limit=limit)
        document["generation"] = self.state.generation
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._respond(200, "application/json", body)

    def _handle_healthz(self) -> None:
        """Three-state health: a short roster is *degraded but serving*.

        ``ok`` (200) — full roster; ``degraded`` (200) — some workers
        down, capacity reduced, but queries still answer, so load
        balancers must NOT eject the instance; ``unavailable`` (503) —
        no workers at all.
        """
        state = self.state
        pool_stats = state.pool.stats()
        alive = int(pool_stats["alive"])
        target = int(pool_stats["target"])
        if alive == 0:
            status, http_status = "unavailable", 503
        elif alive >= target and not state.recovered_torn_tail:
            status, http_status = "ok", 200
        else:
            # A short roster — or a startup that had to truncate a torn
            # WAL tail (every *acked* update survived, but the crash is
            # worth an operator's look) — is degraded yet serving.
            status, http_status = "degraded", 200
        document = {
            "status": status,
            "workers": target,
            "alive": alive,
            "respawn_backoff_seconds": pool_stats["backoff_seconds"],
            "snapshot_fallbacks": pool_stats["snapshot_fallbacks"],
            "generation": state.generation,
            "generation_mixed": state.generation_mixed,
            "inflight": state.metrics.inflight,
            "pending_updates": state.pool.pending_replay,
            "wal_depth": state.wal.depth if state.wal is not None else 0,
            "recovered_torn_tail": state.recovered_torn_tail,
            "cache": state.cache.stats(),
        }
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._respond(http_status, "application/json", body)

    def _handle_metrics(self) -> None:
        state = self.state
        text = state.metrics.render(
            state.generation,
            state.pool.stats(),
            state.cache.stats(),
            state.wal_stats(),
        )
        self._respond(200, "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8"))


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    state: "SparqlServer"


class SparqlServer:
    """The assembled service: pool + cache + metrics + HTTP listener."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.metrics = ServerMetrics()
        self.cache = ResultCache(config.cache_entries, config.cache_bytes)
        #: Per-template execution stats (GET /debug/templates, SIGUSR1
        #: dump) — fed by worker reply meta and by cache hits.
        self.templates = TemplateRegistry()
        #: The structured slow-query log, or None when not configured.
        self.slowlog: Optional[SlowQueryLog] = (
            SlowQueryLog(config.slow_query_log) if config.slow_query_log else None
        )
        # Arm fault injection before anything that hosts an injection
        # point (the pool spawn below included).  Workers arm the same
        # plan independently — it travels pickled through the spawn
        # args — so one spec drives the whole process tree.
        self._armed_faults = False
        if config.faults:
            _faults.arm(config.faults)  # FaultSpecError propagates: typos fail loudly
            self._armed_faults = True
        # Open (and recover) the write-ahead log before anything else
        # is running: a corrupt log must refuse startup (exit code 3,
        # like a corrupt snapshot) with nothing to unwind, and a torn
        # tail is truncated here so the replay below sees only complete
        # frames.  The recovered records are replayed once the pool is
        # up.
        self.wal: Optional[WriteAheadLog] = None
        #: Startup recoveries performed (0 or 1 per process): the log
        #: held acked updates the snapshot lacked, or a torn tail was
        #: cut.  Rendered as repro_wal_recoveries_total.
        self.wal_recoveries = 0
        #: True when open found (and truncated) a torn final frame —
        #: surfaced on /healthz as a degraded, but correct, start.
        self.recovered_torn_tail = False
        #: The recovery span tree (obs), set when a replay ran.
        self.recovery_trace: Optional[dict] = None
        if config.wal:
            self.wal = WriteAheadLog(config.wal, policy=config.wal_fsync)
            self.recovered_torn_tail = self.wal.recovered_torn_tail
        # Bind the listener *before* spawning workers: a bind failure
        # (EADDRINUSE, privileged port) must not leave N freshly
        # spawned processes parked on their pipes.
        self._httpd = _HTTPServer((config.host, config.port), _Handler)
        #: Set when a respawned worker reports a different snapshot
        #: generation than the fleet started on (in-place rebuild):
        #: results from different data versions now coexist, so the
        #: result cache is cleared and bypassed — correctness degrades
        #: to miss-through, never to stale hits.
        self.generation_mixed = False
        try:
            self.pool = WorkerPool(
                config,
                on_restart=self.metrics.record_worker_restart,
                on_generation_drift=self._on_generation_drift,
                on_snapshot_fallback=self._on_snapshot_fallback,
            )
        except BaseException:
            self._httpd.server_close()
            raise
        self.generation = self.pool.generation
        self.admission = AdmissionController(
            config.effective_max_inflight,
            config.effective_queue_size,
            config.effective_queue_wait,
        )
        # ---- live-write state ----
        #: Serializes POST /update handling (and compaction) so writes
        #: commit in a single total order: parent store first, then the
        #: worker fleet, then the generation the cache keys on.
        self._update_lock = threading.Lock()
        #: The parent's own authoritative engine/store, loaded lazily on
        #: the first update — read-only servers never pay for it.
        self._writer_engine = None
        self._compacting = False
        if self.wal is not None:
            # From here on the WAL (already appended to before every
            # broadcast) is the respawn-replay source; the pool's
            # in-memory list stays empty.
            self.pool.attach_wal(self.wal)
            try:
                self._replay_wal_tail()
            except BaseException:
                self.pool.close()
                self._httpd.server_close()
                raise
        self._httpd.state = self
        self._thread: Optional[threading.Thread] = None

    def _on_snapshot_fallback(self) -> None:
        # A respawned worker could not load the data file (rebuilt in
        # place, torn, or vanished): the still-running workers keep
        # serving the generation they have mapped while the pool's heal
        # thread retries on its backoff schedule.  Counted in
        # /metrics (repro_snapshot_fallbacks_total) via pool.stats().
        sys.stderr.write(
            f"warning: worker respawn could not load {self.config.data}; "
            f"serving last-good generation {self.generation} at reduced "
            f"capacity while the heal thread retries\n"
        )

    def _on_generation_drift(self, new_generation: int) -> None:
        self.generation_mixed = True
        self.cache.disable()  # atomic clear-and-refuse under the cache lock
        sys.stderr.write(
            f"warning: worker respawned against generation {new_generation} "
            f"(fleet started at {self.generation}); result cache disabled — "
            f"restart the server to serve one consistent snapshot\n"
        )

    # ------------------------------------------------------------------
    # live writes
    # ------------------------------------------------------------------
    def _writer(self):
        """The parent-side authoritative engine (lazily constructed)."""
        if self._writer_engine is None:
            from ..core.engine import SparqlUOEngine

            store = _open_store(self.config.data)
            if self.wal is not None:
                # Compaction (store.compact) truncates the WAL's dead
                # prefix as part of publishing the snapshot.
                store.attach_wal(self.wal)
            self._writer_engine = SparqlUOEngine(
                store, options=self.config.engine_options()
            )
        return self._writer_engine

    def _replay_wal_tail(self) -> None:
        """Replay recovered WAL records past the snapshot generation.

        Runs once at startup, before the listener accepts a single
        request: every acked update the previous process logged but had
        not yet compacted is re-applied to the writer store and
        broadcast to the fresh fleet, so a ``kill -9`` between two
        compactions loses nothing.  The writer's *computed* generation
        is authoritative — a recorded generation can legitimately drift
        when an unacked (never-logged) update separated two logged ones
        before the crash — and a frame whose text no longer parses is
        corruption (exit code 3): logged frames were validated before
        being written.
        """
        wal = self.wal
        assert wal is not None
        records = [r for r in wal.recovered_records if r.generation > self.generation]
        if not records and not wal.recovered_torn_tail:
            return
        tracer = _obs_trace.Tracer("wal_recovery", path=self.config.wal)
        tracer.begin("replay", records=len(records))
        started = perf_counter()
        replayed = 0
        if records:
            engine = self._writer()
            with engine.store.bulk_replay():
                for record in records:
                    try:
                        result = engine.update(record.text, timeout=self.config.timeout)
                    except SparqlError as exc:
                        raise WalCorruptError(
                            f"recovered frame at generation {record.generation} "
                            f"does not parse: {exc}"
                        ) from exc
                    if not (result.added or result.removed):
                        continue
                    if result.generation != record.generation:
                        sys.stderr.write(
                            f"warning: wal replay computed generation "
                            f"{result.generation} for a frame recorded at "
                            f"{record.generation} (an unacked update preceded "
                            f"the crash); continuing with the computed value\n"
                        )
                    self.pool.broadcast_update(record.text, result.generation)
                    self.generation = result.generation
                    replayed += 1
        self.wal_recoveries = 1
        tracer.end(applied=replayed, torn_tail=wal.recovered_torn_tail)
        self.recovery_trace = tracer.finish()
        sys.stderr.write(
            f"wal: recovered {replayed} update(s) from {self.config.wal!r}"
            f"{' (torn tail truncated)' if wal.recovered_torn_tail else ''} "
            f"in {(perf_counter() - started) * 1000:.1f} ms; "
            f"serving generation {self.generation}\n"
        )

    def wal_stats(self) -> Optional[dict]:
        """One consistent WAL sample for /metrics (None when disabled)."""
        if self.wal is None:
            return None
        stats = self.wal.stats()
        stats["recoveries"] = self.wal_recoveries
        return stats

    def apply_update(self, text: str) -> dict:
        """Apply one UPDATE request: parent store, then the fleet.

        The parent's store is authoritative: the update is parsed and
        applied there first, so a syntax error, an unsupported form or
        an injected ``delta.apply`` fault rejects the request before
        any worker has seen it.  Only a request that actually changed
        at least one triple is broadcast — a no-op commits nothing,
        bumps no generation, and therefore invalidates no caches
        (the write-path invalidation fix this PR carries).
        """
        wal_seq: Optional[int] = None
        durability_error: Optional[OSError] = None
        with self._update_lock:
            engine = self._writer()
            result = engine.update(text, timeout=self.config.timeout)
            confirmed = 0
            changed = bool(result.added or result.removed)
            if changed:
                if self.wal is not None:
                    # The append happens under the update lock so frame
                    # order matches commit order; the fsync wait happens
                    # *outside* it (below), so concurrent committers
                    # share a group-commit leader's fsync instead of
                    # serializing one fsync per update.
                    try:
                        wal_seq = self.wal.append(result.generation, text)
                    except OSError as exc:
                        # The parent store has already committed, so the
                        # fleet must still be brought along (consistency
                        # over durability) — but the client gets a 5xx:
                        # this update was never acked and may not
                        # survive a crash.
                        durability_error = exc
                confirmed = self.pool.broadcast_update(text, result.generation)
                # Advance the cache key only after the fleet confirmed:
                # queries racing the broadcast keep hitting the old
                # generation's entries, which still describe the data
                # their worker served.
                self.generation = result.generation
                self.metrics.record_update(result.added, result.removed)
                self._maybe_compact()
            pending = engine.store.pending_delta
        if self.wal is not None and wal_seq is not None and durability_error is None:
            # Ack-after-fsync: the frame must be durable before the
            # client can see its 2xx.
            try:
                self.wal.sync(wal_seq)
            except OSError as exc:
                durability_error = exc
        if durability_error is not None:
            raise OSError(
                f"update applied in memory but not durable "
                f"(WAL write failed: {durability_error}); treat this "
                f"update as unacked"
            ) from durability_error
        return {
            "added": result.added,
            "removed": result.removed,
            "operations": result.operations,
            "generation": result.generation,
            "changed": changed,
            "workers_confirmed": confirmed,
            "pending_delta": {"adds": pending[0], "tombstones": pending[1]},
        }

    def _maybe_compact(self) -> None:
        """Kick background compaction once the delta outgrows the threshold."""
        threshold = self.config.compact_threshold
        if threshold <= 0 or self._compacting:
            return
        store = self._writer().store
        if sum(store.pending_delta) < threshold:
            return
        self._compacting = True
        threading.Thread(
            target=self._compact, name="repro-compact", daemon=True
        ).start()

    def _compact(self) -> None:
        """Fold the writer's delta into the data file (atomic overwrite).

        Runs under the update lock so no update can land mid-write; the
        ``compact.publish`` fault site fires before any bytes move, so
        an injected failure leaves the delta intact for the next
        attempt.  On success the pool truncates its replay log — future
        respawns load the compacted snapshot directly.
        """
        try:
            with self._update_lock:
                store = self._writer().store
                try:
                    generation = store.compact(self.config.data)
                except OSError as exc:
                    sys.stderr.write(
                        f"warning: delta compaction failed ({exc}); "
                        f"retrying after the next update\n"
                    )
                    return
                self.pool.note_snapshot_generation(generation)
                self.metrics.record_compaction()
        finally:
            self._compacting = False

    # ------------------------------------------------------------------
    def dump_stats(self, destination: Optional[str] = None) -> None:
        """Write the template-stats registry as JSON to ``destination``
        (a path, or "-" for stderr).  The ``repro serve --stats-dump``
        SIGUSR1 handler calls this; it never raises."""
        destination = destination or self.config.stats_dump or "-"
        document = self.templates.snapshot()
        document["generation"] = self.generation
        text = json.dumps(document, sort_keys=True) + "\n"
        try:
            if destination == "-":
                sys.stderr.write(text)
                sys.stderr.flush()
            else:
                with open(destination, "w", encoding="utf-8") as handle:
                    handle.write(text)
        except OSError as exc:
            sys.stderr.write(f"warning: stats dump failed: {exc}\n")

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (tests, benchmarks)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-sparql-http", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting connections, then stop the workers.

        Handler threads are daemonic, so shutdown never blocks on a
        stuck client; the drain below waits (up to ``drain_seconds``)
        for in-flight queries to finish before the pool closes, so a
        SIGTERM during live traffic completes the accepted work instead
        of tearing worker pipes out from under it.  A handler racing
        the worker-pool close anyway gets a clean "server shutting
        down" error reply rather than a torn pipe (see
        :meth:`WorkerPool.execute`).
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        deadline = time.monotonic() + max(self.config.drain_seconds, 0.0)
        while self.metrics.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        if self.wal is not None:
            # Close fsyncs under every policy: a drained SIGTERM/SIGINT
            # shutdown must not lose the final group-commit window (or,
            # under policy "off", the whole OS writeback window).
            self.wal.close()
        self.pool.close()
        if self._armed_faults:
            _faults.disarm()
            self._armed_faults = False

    def __enter__(self) -> "SparqlServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve(config: ServerConfig, out=None) -> int:
    """The blocking ``repro serve`` entry point with signal handling."""
    out = out if out is not None else sys.stdout
    try:
        server = SparqlServer(config)
    except WalCorruptError as exc:
        # Mirrors the corrupt-snapshot CLI contract: complete-but-wrong
        # evidence refuses to serve (exit 3); torn tails never get here
        # — they are truncated during recovery.
        print(f"error: corrupt write-ahead log: {exc}", file=sys.stderr)
        print(
            "hint: inspect with `repro wal info`; move the file aside to "
            "start from the snapshot alone (acked updates in the log "
            "will be lost)",
            file=sys.stderr,
        )
        return 3
    except (PoolError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wal_note = (
        f" wal={config.wal}:{config.wal_fsync}" if config.wal else ""
    )
    print(
        f"serving {config.data} at {server.url}/sparql "
        f"(workers={server.pool.size} timeout={config.timeout:g}s "
        f"generation={server.generation}{wal_note})",
        file=out,
        flush=True,
    )

    def _signal_handler(signum, frame) -> None:
        # shutdown() must run off the serve_forever thread; the full
        # cleanup happens once serve_forever returns, below.
        threading.Thread(target=server._httpd.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _signal_handler)
    if config.stats_dump and hasattr(signal, "SIGUSR1"):

        def _dump_handler(signum, frame) -> None:
            # Dump off the signal frame: file I/O under a handler would
            # block the serve loop mid-accept.
            threading.Thread(target=server.dump_stats, daemon=True).start()

        previous[signal.SIGUSR1] = signal.signal(signal.SIGUSR1, _dump_handler)
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown()  # idempotent with the handler's shutdown()
    print("shutdown complete", file=out, flush=True)
    return 0
