"""Per-query server metrics, rendered in Prometheus exposition format.

Deliberately concrete — one registry class with named fields rather
than a generic metrics framework — because ``/metrics`` is the whole
consumer.  Latency quantiles come from a bounded sliding window (the
most recent observations), which is what a scrape-based monitor wants
anyway; counters and sums are exact over the server's lifetime.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, List, Mapping, Optional

from .. import faults as _faults
from ..core.metrics import EXEC_COUNTER_FIELDS

__all__ = ["HISTOGRAM_BUCKETS", "LatencySummary", "ServerMetrics"]

#: Cumulative latency histogram bounds (seconds) for
#: ``repro_query_seconds_bucket``.  Unlike the sliding-window summary
#: quantiles, bucket counts are exact over the server's lifetime and
#: aggregate across instances — the form dashboards compute quantiles
#: from.  +Inf is implicit (rendered, not stored).
HISTOGRAM_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencySummary:
    """Exact count/sum plus sliding-window quantiles for one label set,
    and exact cumulative histogram bucket counts."""

    __slots__ = ("count", "total", "_window", "buckets")

    def __init__(self, window: int = 4096):
        self.count = 0
        self.total = 0.0
        self._window: Deque[float] = deque(maxlen=window)
        #: Per-bound observation counts, *non*-cumulative; the renderer
        #: accumulates them into Prometheus's cumulative ``le`` series.
        self.buckets = [0] * len(HISTOGRAM_BUCKETS)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self._window.append(seconds)
        for index, bound in enumerate(HISTOGRAM_BUCKETS):
            if seconds <= bound:
                self.buckets[index] += 1
                break

    def quantile(self, q: float) -> Optional[float]:
        if not self._window:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]


class ServerMetrics:
    """The server's aggregate view of every query it has handled."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        #: HTTP status code → responses sent.
        self.requests_by_status: Counter = Counter()
        self.shed_total = 0
        self.timeouts_total = 0
        self.worker_restarts_total = 0
        #: Stale cache entries served under stale-while-error.
        self.stale_served_total = 0
        #: SPARQL UPDATE requests that committed (changed ≥ 1 triple).
        self.updates_total = 0
        self.update_triples_added_total = 0
        self.update_triples_removed_total = 0
        #: Delta compactions folded into the data file.
        self.compactions_total = 0
        #: Worker-side fault injections, by site: each successful reply
        #: carries the *delta* of injections since the worker's previous
        #: reply, so the aggregate is exact for surviving workers.
        self.fault_injections: Counter = Counter()
        self.inflight = 0
        self.rows_total = 0
        self.join_space_total = 0.0
        #: Execution-path counters aggregated across worker queries
        #: (merge vs hash joins, galloping, candidate intersections).
        self.exec_totals: Counter = Counter()
        #: Outcome label → latency summary; "hit" vs "miss" is the
        #: cache dimension the benchmark's acceptance criterion reads.
        self.latency: Dict[str, LatencySummary] = {
            "hit": LatencySummary(),
            "miss": LatencySummary(),
        }

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_response(self, status: int) -> None:
        with self._lock:
            self.requests_by_status[status] += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed_total += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts_total += 1

    def record_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts_total += 1

    def record_stale_served(self) -> None:
        with self._lock:
            self.stale_served_total += 1

    def record_update(self, added: int, removed: int) -> None:
        with self._lock:
            self.updates_total += 1
            self.update_triples_added_total += added
            self.update_triples_removed_total += removed

    def record_compaction(self) -> None:
        with self._lock:
            self.compactions_total += 1

    def record_fault_injections(self, counts: Mapping[str, int]) -> None:
        """Fold in per-site injection deltas reported by a worker."""
        with self._lock:
            for site, count in counts.items():
                if count:
                    self.fault_injections[site] += int(count)

    def record_query(
        self,
        outcome: str,
        seconds: float,
        rows: int,
        join_space: float,
        exec_counters: Optional[Mapping[str, int]] = None,
    ) -> None:
        """One completed query: ``outcome`` is ``hit`` or ``miss``."""
        with self._lock:
            summary = self.latency.setdefault(outcome, LatencySummary())
            summary.observe(seconds)
            self.rows_total += rows
            self.join_space_total += join_space
            if exec_counters:
                for name in EXEC_COUNTER_FIELDS:
                    value = exec_counters.get(name)
                    if value:
                        self.exec_totals[name] += int(value)

    def enter(self) -> None:
        with self._lock:
            self.inflight += 1

    def leave(self) -> None:
        with self._lock:
            self.inflight -= 1

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(
        self,
        generation: int,
        pool_stats: Mapping[str, float],
        cache_stats: Dict[str, int],
        wal_stats: Optional[Mapping[str, object]] = None,
    ) -> str:
        """The ``/metrics`` document (Prometheus text exposition v0).

        ``pool_stats`` is :meth:`WorkerPool.stats` — roster health
        (alive vs target, heal backoff, snapshot fallbacks) sampled in
        one lock hold so the exposed values are mutually consistent.
        ``wal_stats`` is :meth:`SparqlServer.wal_stats` (None renders
        the WAL series at zero: dashboards can tell "durability off"
        from "no writes yet" via repro_wal_enabled).
        """
        alive = int(pool_stats.get("alive", 0))
        target = int(pool_stats.get("target", alive))
        if alive >= target and target > 0:
            degraded_state = 0  # full roster
        elif alive > 0:
            degraded_state = 1  # degraded: serving at reduced capacity
        else:
            degraded_state = 2  # unavailable: no workers at all
        # Parent-side injections (send/recv/cache/respond sites) plus
        # the worker-side deltas that rode home on replies.
        active = _faults.ACTIVE
        fault_counts = Counter(active.counts() if active is not None else {})
        with self._lock:
            fault_counts.update(self.fault_injections)
            lines: List[str] = []

            def emit(name: str, value, help_text: str, kind: str = "counter", labels: str = ""):
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                suffix = f"{{{labels}}}" if labels else ""
                lines.append(f"{name}{suffix} {value}")

            lines.append("# HELP repro_requests_total HTTP responses by status code.")
            lines.append("# TYPE repro_requests_total counter")
            for status in sorted(self.requests_by_status):
                lines.append(
                    f'repro_requests_total{{status="{status}"}} '
                    f"{self.requests_by_status[status]}"
                )
            emit("repro_shed_total", self.shed_total, "Requests shed by admission control.")
            emit("repro_timeouts_total", self.timeouts_total, "Queries past their deadline.")
            emit(
                "repro_worker_restarts_total",
                self.worker_restarts_total,
                "Workers killed and respawned.",
            )
            emit("repro_inflight_queries", self.inflight, "Queries executing now.", "gauge")
            emit("repro_workers", alive, "Worker processes alive in the pool.", "gauge")
            emit(
                "repro_workers_target",
                target,
                "Configured worker roster size.",
                "gauge",
            )
            emit(
                "repro_degraded_state",
                degraded_state,
                "Capacity state: 0 full roster, 1 degraded, 2 no workers.",
                "gauge",
            )
            emit(
                "repro_respawn_backoff_seconds",
                pool_stats.get("backoff_seconds", 0),
                "Seconds until the heal path retries a failed respawn.",
                "gauge",
            )
            emit(
                "repro_snapshot_fallbacks_total",
                int(pool_stats.get("snapshot_fallbacks", 0)),
                "Respawns that failed to load the snapshot; survivors "
                "keep serving the last-good generation.",
            )
            emit(
                "repro_stale_served_total",
                self.stale_served_total,
                "Stale cache entries served under stale-while-error.",
            )
            emit(
                "repro_updates_total",
                self.updates_total,
                "SPARQL UPDATE requests that changed at least one triple.",
            )
            emit(
                "repro_update_triples_added_total",
                self.update_triples_added_total,
                "Triples inserted by UPDATE requests.",
            )
            emit(
                "repro_update_triples_removed_total",
                self.update_triples_removed_total,
                "Triples removed by UPDATE requests.",
            )
            emit(
                "repro_compactions_total",
                self.compactions_total,
                "Delta compactions folded into the data file.",
            )
            wal = wal_stats or {}
            emit(
                "repro_wal_enabled",
                1 if wal_stats is not None else 0,
                "Whether a write-ahead log backs POST /update acks.",
                "gauge",
            )
            emit(
                "repro_wal_depth",
                int(wal.get("depth", 0)),  # type: ignore[arg-type]
                "WAL frames awaiting compaction (respawn replay depth).",
                "gauge",
            )
            emit(
                "repro_wal_records_total",
                int(wal.get("records_total", 0)),  # type: ignore[arg-type]
                "Update frames appended to the WAL by this process.",
            )
            emit(
                "repro_wal_recoveries_total",
                int(wal.get("recoveries", 0)),  # type: ignore[arg-type]
                "Startup recoveries that replayed the WAL tail or cut a "
                "torn frame.",
            )
            lines.append(
                "# HELP repro_wal_fsync_seconds Time spent in WAL "
                "durability fsyncs (group commit shares one fsync across "
                "concurrent updates)."
            )
            lines.append("# TYPE repro_wal_fsync_seconds summary")
            lines.append(
                f"repro_wal_fsync_seconds_count {int(wal.get('fsync_count', 0))}"  # type: ignore[arg-type]
            )
            lines.append(
                f"repro_wal_fsync_seconds_sum {float(wal.get('fsync_seconds', 0.0)):.6f}"  # type: ignore[arg-type]
            )
            lines.append(
                "# HELP repro_faults_injected_total Injected faults by site "
                "(zero series absent; parent and worker injections combined)."
            )
            lines.append("# TYPE repro_faults_injected_total counter")
            for site in sorted(fault_counts):
                lines.append(
                    f'repro_faults_injected_total{{site="{site}"}} {fault_counts[site]}'
                )
            emit(
                "repro_store_generation",
                generation,
                "Store generation served (result-cache key).",
                "gauge",
            )
            emit("repro_rows_total", self.rows_total, "Result rows produced.")
            emit(
                "repro_join_space_total",
                f"{self.join_space_total:.6g}",
                "Summed join-space metric (paper Fig. 11) across queries.",
            )
            lines.append(
                "# HELP repro_exec_path_total Execution-path counters "
                "(merge vs hash joins, galloping, candidate intersections)."
            )
            lines.append("# TYPE repro_exec_path_total counter")
            for name in EXEC_COUNTER_FIELDS:
                lines.append(
                    f'repro_exec_path_total{{counter="{name}"}} '
                    f"{self.exec_totals.get(name, 0)}"
                )
            emit(
                "repro_cache_hits_total", cache_stats.get("hits", 0), "Result-cache hits."
            )
            emit(
                "repro_cache_misses_total",
                cache_stats.get("misses", 0),
                "Result-cache misses.",
            )
            emit(
                "repro_cache_entries",
                cache_stats.get("entries", 0),
                "Result-cache entries resident.",
                "gauge",
            )
            emit(
                "repro_cache_bytes",
                cache_stats.get("bytes", 0),
                "Result-cache payload bytes resident.",
                "gauge",
            )
            lines.append(
                "# HELP repro_query_latency_seconds Query latency by cache outcome."
            )
            lines.append("# TYPE repro_query_latency_seconds summary")
            for outcome, summary in sorted(self.latency.items()):
                for q in (0.5, 0.9, 0.99):
                    value = summary.quantile(q)
                    if value is not None:
                        lines.append(
                            f'repro_query_latency_seconds{{cache="{outcome}",quantile="{q}"}} '
                            f"{value:.6f}"
                        )
                lines.append(
                    f'repro_query_latency_seconds_count{{cache="{outcome}"}} {summary.count}'
                )
                lines.append(
                    f'repro_query_latency_seconds_sum{{cache="{outcome}"}} '
                    f"{summary.total:.6f}"
                )
            lines.append(
                "# HELP repro_query_seconds Query latency histogram by "
                "cache outcome (cumulative buckets)."
            )
            lines.append("# TYPE repro_query_seconds histogram")
            for outcome, summary in sorted(self.latency.items()):
                cumulative = 0
                for bound, count in zip(HISTOGRAM_BUCKETS, summary.buckets):
                    cumulative += count
                    lines.append(
                        f'repro_query_seconds_bucket{{cache="{outcome}",le="{bound}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'repro_query_seconds_bucket{{cache="{outcome}",le="+Inf"}} '
                    f"{summary.count}"
                )
                lines.append(
                    f'repro_query_seconds_sum{{cache="{outcome}"}} {summary.total:.6f}'
                )
                lines.append(
                    f'repro_query_seconds_count{{cache="{outcome}"}} {summary.count}'
                )
            emit(
                "repro_uptime_seconds",
                f"{time.time() - self.started_at:.3f}",
                "Seconds since server start.",
                "gauge",
            )
            return "\n".join(lines) + "\n"
