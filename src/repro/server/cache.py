"""Generation-keyed LRU result cache.

Every cache key embeds the *store generation* the result was computed
at — the monotonic write counter the snapshot format persists
(:mod:`repro.storage.snapshot`) and :class:`~repro.storage.store.TripleStore`
exposes.  Invalidation therefore needs no TTLs and no explicit flush:
pointing the server at a newer snapshot changes the generation, every
old key simply stops matching, and stale entries age out of the LRU
tail.  This is the server-side payoff of persisting the generation in
PR 3.

Entries are whole serialized response payloads (bytes), so a hit
bypasses the worker pool, the engine *and* the serializer — the
difference the throughput benchmark's hit/miss p50 ratio measures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["CachedResult", "ResultCache"]


class CachedResult:
    """One cached response: payload plus the metadata ``/metrics`` wants."""

    __slots__ = (
        "payload",
        "content_type",
        "row_count",
        "join_space",
        "exec_counters",
        "template",
    )

    def __init__(
        self,
        payload: bytes,
        content_type: str,
        row_count: int,
        join_space: float,
        exec_counters: Optional[Dict[str, int]] = None,
        template: Optional[Dict[str, object]] = None,
    ):
        self.payload = payload
        self.content_type = content_type
        self.row_count = row_count
        self.join_space = join_space
        #: Execution counters recorded when the entry was computed —
        #: replayed to clients on a hit so hot queries stop silently
        #: under-reporting (``--stats`` / worker reply meta).
        self.exec_counters = exec_counters
        #: The query's constant-lifted template ({"hash", "text"}), so
        #: cache hits still feed the template-stats registry.
        self.template = template


#: generation, format key, exact query text.
_Key = Tuple[int, str, str]


class ResultCache:
    """A thread-safe LRU over (generation, format, query text) keys.

    Bounded both by entry count and by total payload bytes; one
    oversized result (bigger than the byte budget) is never admitted,
    so a single huge SELECT cannot evict the whole working set.
    ``max_entries == 0`` disables the cache (every ``get`` misses and
    ``put`` is a no-op) — the configuration the scaling benchmark runs
    under.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int = 64 * 1024 * 1024):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[_Key, CachedResult]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._disabled = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, generation: int, fmt: str, query: str) -> Optional[CachedResult]:
        if self.max_entries <= 0 or self._disabled:
            return None
        key = (generation, fmt, query)
        with self._lock:
            if self._disabled:
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, generation: int, fmt: str, query: str, result: CachedResult) -> bool:
        """Admit a result; returns False when it cannot be cached."""
        if (
            self.max_entries <= 0
            or self._disabled
            or len(result.payload) > self.max_bytes
        ):
            return False
        key = (generation, fmt, query)
        with self._lock:
            if self._disabled:
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= len(previous.payload)
            self._entries[key] = result
            self._bytes += len(result.payload)
            while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted.payload)
                self.evictions += 1
        return True

    def get_stale(self, fmt: str, query: str) -> Optional[CachedResult]:
        """A last-resort lookup that ignores the generation key.

        Backs the opt-in stale-while-error mode: when the pool cannot
        answer, the *freshest* cached result for this (format, query) —
        the one computed at the highest generation — beats a 5xx.  LRU
        recency is not data freshness: an old-generation entry that a
        client re-touched recently would otherwise shadow a newer
        answer sitting cold in the middle of the list.  Does not touch
        hit/miss accounting or LRU order: stale serves are an emergency
        path, not a workload signal.
        """
        if self.max_entries <= 0 or self._disabled:
            return None
        with self._lock:
            if self._disabled:
                return None
            best_generation: Optional[int] = None
            best: Optional[CachedResult] = None
            for (entry_generation, entry_fmt, entry_query), entry in self._entries.items():
                if entry_fmt != fmt or entry_query != query:
                    continue
                if best_generation is None or entry_generation > best_generation:
                    best_generation = entry_generation
                    best = entry
            return best

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def disable(self) -> None:
        """Permanently clear *and* refuse further entries.

        The mixed-generation safety valve: flipping the flag under the
        cache's own lock closes the check-then-act window where a
        request already executing against old data could re-insert an
        entry after an external clear.
        """
        with self._lock:
            self._disabled = True
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def payload_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
