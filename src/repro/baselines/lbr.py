"""LBR baseline (Atre, SIGMOD 2015) — the paper's Figure 13 comparator.

LBR ("Left Bit Right") optimizes SPARQL OPTIONAL (left-outer-join)
queries.  Its execution strategy, reproduced here over our store:

1. **Per-pattern materialization** — every triple pattern is evaluated
   *individually* (no BGP-level batching, no join reordering: document
   order is kept), which is the structural difference from the paper's
   BGP-based scheme.
2. **Two-pass semijoin pruning over the GoSN** — following the graph of
   join variables, each pattern's rows are semijoin-reduced against
   every connected pattern, in a forward pass and then a backward pass.
   Pruning direction respects left-outer-join semantics: a pattern may
   prune patterns in its own or a *descendant* supernode scope, never an
   ancestor's (an optional pattern must not eliminate master rows).
3. **Join phase** — master patterns are joined pairwise in document
   order; each optional child supernode is evaluated recursively and
   left-outer-joined.  Inconsistent-binding removal (LBR's
   nullification + best-match, inherited from SQL outer-join work) is
   subsumed by the exact bag-semantics ``left_join`` operator here —
   those techniques exist to repair LBR's multiway-join encoding, which
   we do not need to emulate to reproduce its cost profile.

The two semijoin scan passes plus full per-pattern materialization are
exactly the overheads §7.2 attributes to LBR.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional as Opt, Sequence, Set, Tuple, Union as U

from ..bgp.interface import decode_bag
from ..rdf.triple import TriplePattern
from ..sparql.algebra import SelectQuery, pattern_variables
from ..sparql.bags import Bag, join, left_join
from ..sparql.parser import parse_query
from ..storage.store import TripleStore
from .gosn import SuperNode, build_gosn

__all__ = ["LBREngine", "LBRResult"]

#: A pattern occurrence: (scope path, pattern, materialized rows).
_Entry = Tuple[Tuple[int, ...], TriplePattern, Bag]


class LBRResult:
    """Result of one LBR execution, with phase timings."""

    def __init__(self, solutions: Bag, variables: List[str], seconds: float, semijoin_passes: int):
        self.solutions = solutions
        self.variables = variables
        self.seconds = seconds
        self.semijoin_passes = semijoin_passes

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self):
        return iter(self.solutions)

    def __repr__(self) -> str:
        return f"LBRResult({len(self)} solutions in {self.seconds * 1000:.1f} ms)"


class LBREngine:
    """LBR-style OPTIONAL query processor over a :class:`TripleStore`."""

    name = "lbr"

    def __init__(self, store: TripleStore):
        self.store = store

    def execute(self, query: U[str, SelectQuery]) -> LBRResult:
        start = time.perf_counter()
        if isinstance(query, str):
            query = parse_query(query)
        gosn = build_gosn(query)

        entries = self._materialize(gosn)
        passes = self._two_pass_semijoin(entries)
        solutions = self._join_phase(gosn, dict_by_id(entries))

        names = query.projection_names()
        if names is None:
            names = sorted(pattern_variables(query.where))
        decoded = self._decode(solutions).project(names)
        return LBRResult(decoded, list(names), time.perf_counter() - start, passes)

    # ------------------------------------------------------------------
    # phase 1: per-pattern materialization
    # ------------------------------------------------------------------
    def _materialize(self, gosn: SuperNode) -> List[_Entry]:
        entries: List[_Entry] = []
        self._materialize_node(gosn, (), entries)
        return entries

    def _materialize_node(
        self, node: SuperNode, scope: Tuple[int, ...], entries: List[_Entry]
    ) -> None:
        for pattern in node.patterns:
            entries.append((scope, pattern, self._scan(pattern)))
        for index, child in enumerate(node.children):
            self._materialize_node(child, scope + (index,), entries)

    def _scan(self, pattern: TriplePattern) -> Bag:
        encoded = self.store.encode_pattern(pattern)
        if any(x == -1 for x in encoded):
            return Bag.empty()
        schema, positions = pattern.layout()
        rows = [
            tuple(triple[i] for i in positions)
            for triple in self.store.match_encoded(encoded)
        ]
        return Bag.from_rows(schema, rows)

    # ------------------------------------------------------------------
    # phase 2: two-pass semijoin pruning
    # ------------------------------------------------------------------
    def _two_pass_semijoin(self, entries: List[_Entry]) -> int:
        order = list(range(len(entries)))
        for index in order:  # forward pass
            self._reduce_neighbours(entries, index)
        for index in reversed(order):  # backward pass
            self._reduce_neighbours(entries, index)
        return 2

    def _reduce_neighbours(self, entries: List[_Entry], source_index: int) -> None:
        source_scope, source_pattern, source_bag = entries[source_index]
        source_vars = {v.name for v in source_pattern.variables()}
        for target_index, (target_scope, target_pattern, target_bag) in enumerate(entries):
            if target_index == source_index:
                continue
            if not _may_prune(source_scope, target_scope):
                continue
            shared = source_vars & {v.name for v in target_pattern.variables()}
            for var in shared:
                allowed = source_bag.distinct_values(var)
                slot = target_bag.slot(var)
                # A shared var is always in the target scan's schema;
                # UNBOUND rows (none arise from scans) would be pruned.
                kept = [
                    row
                    for row in target_bag.rows
                    if slot is not None and row[slot] in allowed
                ]
                if len(kept) != len(target_bag):
                    entries[target_index] = (
                        target_scope,
                        target_pattern,
                        Bag.from_rows(target_bag.schema, kept),
                    )
                    target_bag = entries[target_index][2]

    # ------------------------------------------------------------------
    # phase 3: join phase
    # ------------------------------------------------------------------
    def _join_phase(self, gosn: SuperNode, bag_of) -> Bag:
        return self._join_node(gosn, (), bag_of)

    def _join_node(self, node: SuperNode, scope: Tuple[int, ...], bag_of) -> Bag:
        result: Opt[Bag] = None
        for pattern in node.patterns:  # document order, pairwise joins
            bag = bag_of[(scope, id(pattern))]
            result = bag if result is None else join(result, bag)
        if result is None:
            result = Bag.identity()
        for index, child in enumerate(node.children):
            child_result = self._join_node(child, scope + (index,), bag_of)
            result = left_join(result, child_result)
        return result

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode(self, bag: Bag) -> Bag:
        return decode_bag(self.store, bag)


def dict_by_id(entries: Sequence[_Entry]) -> Dict[Tuple[Tuple[int, ...], int], Bag]:
    """Index materialized bags by (scope, pattern identity)."""
    return {(scope, id(pattern)): bag for scope, pattern, bag in entries}


def _may_prune(source_scope: Tuple[int, ...], target_scope: Tuple[int, ...]) -> bool:
    """May ``source``'s bindings semijoin-reduce ``target``?

    Allowed when the source scope is an ancestor of (or equal to) the
    target scope: required patterns prune optional ones and peers prune
    each other, but optional patterns never reduce their masters.
    """
    return target_scope[: len(source_scope)] == source_scope
