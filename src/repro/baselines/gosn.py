"""GoSN — LBR's Graph of SuperNodes (Atre, SIGMOD 2015).

LBR organizes an OPTIONAL query into *supernodes*: the master supernode
holds the required triple patterns; each OPTIONAL clause becomes a child
supernode, recursively.  Nested plain groups are flattened into their
enclosing supernode (their join semantics is the same), which mirrors
LBR's treatment of well-designed pattern trees.

LBR predates SPARQL-UO optimization and does not handle UNION; building
a GoSN for a query containing UNION raises
:class:`~repro.sparql.errors.UnsupportedFeatureError`, matching the
scope of the paper's Figure 13 comparison (OPTIONAL-only queries).
"""

from __future__ import annotations

from typing import List, Set

from ..rdf.triple import TriplePattern
from ..sparql.algebra import (
    FilterExpression,
    GroupGraphPattern,
    OptionalExpression,
    SelectQuery,
    UnionExpression,
)
from ..sparql.errors import UnsupportedFeatureError

__all__ = ["SuperNode", "build_gosn"]


class SuperNode:
    """One supernode: required patterns plus optional children."""

    def __init__(self):
        self.patterns: List[TriplePattern] = []
        self.children: List["SuperNode"] = []

    def variables(self) -> Set[str]:
        out: Set[str] = set()
        for pattern in self.patterns:
            out.update(v.name for v in pattern.variables())
        return out

    def all_variables(self) -> Set[str]:
        out = self.variables()
        for child in self.children:
            out |= child.all_variables()
        return out

    def descendant_count(self) -> int:
        return 1 + sum(child.descendant_count() for child in self.children)

    def pattern_count(self) -> int:
        return len(self.patterns) + sum(c.pattern_count() for c in self.children)

    def __repr__(self) -> str:
        return (
            f"SuperNode({len(self.patterns)} patterns, "
            f"{len(self.children)} optional children)"
        )


def build_gosn(source) -> SuperNode:
    """Build the GoSN of a query or group graph pattern."""
    if isinstance(source, SelectQuery):
        source = source.where
    if not isinstance(source, GroupGraphPattern):
        raise TypeError(f"cannot build a GoSN from {source!r}")
    root = SuperNode()
    _fill(root, source)
    return root


def _fill(node: SuperNode, group: GroupGraphPattern) -> None:
    """Flatten a group into a supernode.

    Nested *required* groups live in the same left-join scope as their
    siblings, so their patterns flatten into the enclosing supernode and
    their OPTIONALs become that supernode's children — the well-designed
    pattern-tree normalization LBR performs.  (For non-well-designed
    queries this normalization can change semantics; LBR's supported
    class, and every Figure 13 query, is well-designed.)
    """
    for element in group.elements:
        if isinstance(element, TriplePattern):
            node.patterns.append(element)
        elif isinstance(element, GroupGraphPattern):
            _fill(node, element)
        elif isinstance(element, OptionalExpression):
            child = SuperNode()
            _fill(child, element.pattern)
            node.children.append(child)
        elif isinstance(element, UnionExpression):
            raise UnsupportedFeatureError(
                "LBR's GoSN does not support UNION (OPTIONAL-only baseline)"
            )
        elif isinstance(element, FilterExpression):
            raise UnsupportedFeatureError(
                "LBR's GoSN does not support FILTER (predates the extension)"
            )
        else:  # pragma: no cover - AST validates
            raise TypeError(f"invalid group element {element!r}")
