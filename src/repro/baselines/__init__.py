"""Baseline systems the paper compares against."""

from .gosn import SuperNode, build_gosn
from .lbr import LBREngine, LBRResult

__all__ = ["SuperNode", "build_gosn", "LBREngine", "LBRResult"]
