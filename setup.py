from setuptools import setup

# Shim for environments whose setuptools lacks PEP 517 editable-install
# support (no `wheel`); configuration lives in pyproject.toml.
setup()
