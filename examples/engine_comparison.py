"""Engine matrix: the paper's §7.1 experiment in miniature.

Runs the six group-1 benchmark queries over both datasets, both host
BGP engines (gStore-style WCO and Jena-style hash join) and all four
strategies, printing a Figure-10-shaped table.  Useful as a smoke test
that the optimizations behave on your machine, and as a template for
evaluating your own queries.

Run with:  python examples/engine_comparison.py  [--quick]
"""

import sys

from repro import SparqlUOEngine, TripleStore
from repro.datasets import DBPEDIA_QUERIES, GROUP1, LUBM_QUERIES, generate_dbpedia, generate_lubm

MODES = ("base", "tt", "cp", "full")


def run_matrix(label: str, store: TripleStore, queries, bgp_engines) -> None:
    for bgp_engine in bgp_engines:
        print(f"\n== {label} / {bgp_engine} — query time in ms (result count) ==")
        header = f"{'query':6s}" + "".join(f"{mode:>16s}" for mode in MODES)
        print(header)
        for name in GROUP1:
            cells = [f"{name:6s}"]
            for mode in MODES:
                engine = SparqlUOEngine(store, bgp_engine=bgp_engine, mode=mode)
                result = engine.execute(queries[name])
                cells.append(f"{result.execute_seconds * 1000:9.1f} ({len(result)})")
            print("".join(f"{c:>16s}" for c in cells))


def main() -> None:
    quick = "--quick" in sys.argv
    lubm_scale = 1 if quick else 3
    articles = 600 if quick else 1500
    engines = ("wco",) if quick else ("wco", "hashjoin")

    print("generating datasets …")
    lubm = TripleStore.from_dataset(generate_lubm(universities=lubm_scale))
    dbpedia = TripleStore.from_dataset(generate_dbpedia(articles=articles))
    print(f"  LUBM: {lubm}\n  DBpedia: {dbpedia}")

    run_matrix("LUBM", lubm, LUBM_QUERIES, engines)
    run_matrix("DBpedia", dbpedia, DBPEDIA_QUERIES, engines)

    print(
        "\nShape to look for (paper Fig. 10): tt/cp/full ≤ base on every"
        " query; full smallest overall; trends similar on both engines."
    )


if __name__ == "__main__":
    main()
