"""FILTER + LIMIT example: pushdown through the BE-tree.

Generates a one-university LUBM graph, then runs a query that combines
a selective REGEX FILTER with LIMIT paging.  The engine evaluates the
filter *inside* the columnar scan pipeline (shrinking every join it
feeds) and stops producing solutions at the page boundary; for
comparison the same query runs with ``pushdown=False``, which filters
and slices only after full evaluation.

Run with:  python examples/filter_limit.py
"""

import time

from repro import SparqlUOEngine
from repro.datasets import generate_lubm

QUERY = """
    SELECT ?student ?name ?course WHERE {
      ?student a ub:UndergraduateStudent .
      ?student ub:name ?name .
      ?student ub:takesCourse ?course .
      FILTER (REGEX(?name, "^UndergraduateStudent[0-9]$"))
    }
    ORDER BY ?name LIMIT 5
"""

PAGE_QUERY = """
    SELECT ?student ?course WHERE {
      ?student ub:takesCourse ?course .
      ?student ub:memberOf ?dept .
    }
    LIMIT 8
"""


def timed(engine: SparqlUOEngine, query: str):
    start = time.perf_counter()
    result = engine.execute(query)
    return result, (time.perf_counter() - start) * 1000.0


def main() -> None:
    dataset = generate_lubm(universities=1)
    print(f"LUBM graph: {dataset.statistics()['triples']} triples")

    engine = SparqlUOEngine.for_dataset(dataset, bgp_engine="wco", mode="full")
    reference = SparqlUOEngine.for_dataset(
        dataset, bgp_engine="wco", mode="full", pushdown=False
    )

    print("\n-- filtered, ordered page (FILTER + ORDER BY + LIMIT 5) --")
    result, _ = timed(engine, QUERY)
    for row in result:
        print(f"  {row['name'].lexical:28s} {row['course'].value}")

    print("\n-- LIMIT early termination (no ORDER BY) --")
    page, page_ms = timed(engine, PAGE_QUERY)
    full, full_ms = timed(reference, PAGE_QUERY)
    page_rows = sum(page.trace.bgp_result_sizes.values())
    full_rows = sum(full.trace.bgp_result_sizes.values())
    print(f"  pushdown:    {len(page)} results, {page_rows} BGP rows materialized, {page_ms:.2f} ms")
    print(f"  post-filter: {len(full)} results, {full_rows} BGP rows materialized, {full_ms:.2f} ms")
    print(f"  early termination materialized {full_rows - page_rows} fewer rows")

    print("\n-- plan (BE-tree with the filter in place) --")
    print(engine.explain(QUERY))


if __name__ == "__main__":
    main()
