"""Quickstart: the paper's Figure 1 example, end to end.

Builds a small DBpedia-style graph in memory, then runs the two
motivating queries:

- a UNION query collecting presidents' names whether they are stored
  under foaf:name or rdfs:label (diverse representation);
- an OPTIONAL query attaching owl:sameAs references where they exist
  (incomplete data).

Run with:  python examples/quickstart.py
"""

from repro import Dataset, IRI, Literal, SparqlUOEngine

DBR = "http://dbpedia.org/resource/"
DBO = "http://dbpedia.org/ontology/"
FOAF = "http://xmlns.com/foaf/0.1/"
RDFS = "http://www.w3.org/2000/01/rdf-schema#"
OWL = "http://www.w3.org/2002/07/owl#"


def build_dataset() -> Dataset:
    data = Dataset()
    link = IRI(DBO + "wikiPageWikiLink")
    presidency = IRI(DBR + "President_of_the_United_States")

    presidents = [
        ("George_W._Bush", "George Walker Bush", "name", True),
        ("Bill_Clinton", "Bill Clinton", "name", True),
        ("Barack_Obama", "Barack Obama", "label", False),
        ("George_Washington", "George Washington", "label", False),
    ]
    for local, full_name, representation, has_sameas in presidents:
        person = IRI(DBR + local)
        data.add_spo(person, link, presidency)
        if representation == "name":
            data.add_spo(person, IRI(FOAF + "name"), Literal(full_name, language="en"))
        else:
            data.add_spo(person, IRI(RDFS + "label"), Literal(full_name, language="en"))
        if has_sameas:
            data.add_spo(
                person,
                IRI(OWL + "sameAs"),
                IRI(f"http://www.freebase.example/{local}"),
            )

    # Background noise: thousands of non-presidents with names, making
    # the name predicates low-selectivity (the regime the optimizer
    # exploits).
    for i in range(2000):
        person = IRI(DBR + f"Person_{i}")
        predicate = IRI(FOAF + "name") if i % 2 == 0 else IRI(RDFS + "label")
        data.add_spo(person, predicate, Literal(f"Person {i}"))
        if i % 3 == 0:
            data.add_spo(person, IRI(OWL + "sameAs"), IRI(f"http://ext.example/{i}"))
    return data


UNION_QUERY = """
SELECT ?x ?name WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
}
"""

OPTIONAL_QUERY = """
SELECT ?x ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  OPTIONAL { ?x owl:sameAs ?same }
}
"""


def main() -> None:
    dataset = build_dataset()
    print(f"dataset: {dataset.statistics()}")

    engine = SparqlUOEngine.for_dataset(dataset, bgp_engine="wco", mode="full")

    print("\n-- Figure 1(a): UNION over diverse name representations --")
    result = engine.execute(UNION_QUERY)
    for row in result:
        print(f"  {row['x'].n3()}  {row['name'].n3()}")
    print(f"  ({len(result)} rows in {result.total_seconds * 1000:.1f} ms)")

    print("\n-- Figure 1(b): OPTIONAL sameAs references --")
    result = engine.execute(OPTIONAL_QUERY)
    for row in result:
        same = row["same"].n3() if "same" in row else "(no reference)"
        print(f"  {row['x'].n3()}  {same}")
    print(f"  ({len(result)} rows in {result.total_seconds * 1000:.1f} ms)")

    print("\n-- The plan the optimizer chose for the UNION query --")
    print(engine.explain(UNION_QUERY))


if __name__ == "__main__":
    main()
