"""Knowledge fusion: UNION over diverse representations (paper §1).

RDF datasets integrated from several sources express the same fact in
different vocabularies — DBpedia itself stores person names under both
``foaf:name`` and ``rdfs:label``, and categorization under both
``purl:subject`` and ``skos:subject``.  Queries that want *complete*
answers must UNION the variants, and those UNIONs are exactly what the
merge transformation optimizes.

This example runs a fusion query over the DBpedia-like generator and
shows what the optimizer does to it:

- `base` evaluates each low-selectivity UNION branch in full;
- `full` merges the selective anchor into the branches (Theorem 1),
  shrinking the intermediate results by orders of magnitude.

Run with:  python examples/knowledge_fusion.py
"""

from repro import SparqlUOEngine, TripleStore
from repro.datasets import generate_dbpedia

FUSION_QUERY = """
SELECT ?article ?label ?topic WHERE {
  ?article dbo:wikiPageWikiLink dbr:Economic_system .
  { ?article rdfs:label ?label } UNION { ?article foaf:name ?label }
  { ?article purl:subject ?topic } UNION { ?article skos:subject ?topic }
}
"""


def main() -> None:
    print("generating DBpedia-like dataset …")
    store = TripleStore.from_dataset(generate_dbpedia(articles=1500))
    print(f"  {store}")

    print("\n-- answers (complete across both name representations) --")
    engine = SparqlUOEngine(store, bgp_engine="wco", mode="full")
    result = engine.execute(FUSION_QUERY)
    for row in list(result)[:10]:
        print(f"  {row['article'].n3():60s} {row['label'].n3()}")
    print(f"  … {len(result)} rows total")

    print("\n-- what each strategy pays --")
    print(f"{'strategy':8s}  {'time (ms)':>10s}  {'join space':>12s}  transformations")
    for mode in ("base", "tt", "cp", "full"):
        engine = SparqlUOEngine(store, bgp_engine="wco", mode=mode)
        result = engine.execute(FUSION_QUERY)
        transforms = (
            result.transform_report.transformations if result.transform_report else 0
        )
        print(
            f"{mode:8s}  {result.execute_seconds * 1000:10.1f}  "
            f"{result.join_space:12.3g}  {transforms}"
        )

    print("\n-- the transformed plan (note the anchor inside each branch) --")
    print(SparqlUOEngine(store, mode="tt").explain(FUSION_QUERY))


if __name__ == "__main__":
    main()
