"""Incomplete data: OPTIONAL enrichment with candidate pruning (§1, §6).

Entities in real knowledge graphs are incomplete — not every professor
has every attribute, not every student has an advisor.  OPTIONAL keeps
the core answers while attaching whatever enrichment exists.  Naively,
each OPTIONAL block's patterns are evaluated over the whole dataset;
candidate pruning instead pushes the values seen so far into the
optional blocks as candidate sets.

This example builds a LUBM-like university graph and assembles complete
profiles for one department's professors.  Watch the trace: under
`full`, every optional BGP is evaluated only for the handful of
professors that survive the selective anchor.

Run with:  python examples/incomplete_profiles.py
"""

from repro import SparqlUOEngine, TripleStore
from repro.datasets import generate_lubm

PROFILE_QUERY = """
SELECT ?prof ?name ?email ?course ?student WHERE {
  ?prof ub:worksFor <http://www.Department3.University0.edu> .
  ?prof ub:name ?name .
  OPTIONAL { ?prof ub:emailAddress ?email }
  OPTIONAL { ?prof ub:teacherOf ?course }
  OPTIONAL { ?student ub:advisor ?prof . ?student ub:teachingAssistantOf ?ta }
}
"""


def main() -> None:
    print("generating LUBM-like dataset …")
    store = TripleStore.from_dataset(generate_lubm(universities=2))
    print(f"  {store}")

    engine = SparqlUOEngine(store, bgp_engine="wco", mode="full")
    result = engine.execute(PROFILE_QUERY)

    print("\n-- professor profiles (missing attributes stay missing) --")
    seen = set()
    for row in result:
        prof = row["prof"].value.rsplit("/", 1)[-1]
        if prof in seen:
            continue
        seen.add(prof)
        email = row.get("email")
        course = row.get("course")
        print(
            f"  {prof:22s} email={'yes' if email else '—':3s} "
            f"course={'yes' if course else '—':3s} "
            f"advisee={'yes' if 'student' in row else '—'}"
        )

    print(f"\n  {len(result)} solution rows")

    print("\n-- pruning effect (observed BGP result sizes) --")
    for mode in ("base", "full"):
        engine = SparqlUOEngine(store, bgp_engine="wco", mode=mode)
        result = engine.execute(PROFILE_QUERY)
        trace = result.trace
        total = sum(trace.bgp_result_sizes.values())
        print(
            f"  {mode:5s}: {trace.bgp_evaluations} BGP evaluations, "
            f"{trace.pruned_evaluations} candidate-restricted, "
            f"{total} rows materialized, JS={result.join_space:.3g}"
        )


if __name__ == "__main__":
    main()
