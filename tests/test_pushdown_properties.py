"""Property tests: pushdown never changes the result multiset.

``SparqlUOEngine(pushdown=False)`` runs the reference pipeline —
filters only at group end, decode before DISTINCT, no LIMIT
short-circuit — while ``pushdown=True`` (the default) enables
filter-into-scan evaluation, DISTINCT on encoded rows before decode,
and LIMIT early termination.  These properties assert the two always
produce the same solution multiset (modulo the page freedom SPARQL
grants an un-ORDERed LIMIT), across both BGP engines and with
transformations + candidate pruning enabled.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import SparqlUOEngine
from repro.sparql.algebra import SelectQuery
from repro.sparql.semantics import execute_query
from repro.storage import TripleStore

from . import oracle
from .strategies import datasets, groups_with_filters, modifier_queries

ENGINES = ("wco", "hashjoin")

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _rows(result) -> list:
    return [dict(mu) for mu in result]


def _assert_same_result(query: SelectQuery, optimized, reference, context: str) -> None:
    opt_rows, ref_rows = _rows(optimized), _rows(reference)
    if query.limit is None and not query.offset:
        assert oracle.as_counter(opt_rows) == oracle.as_counter(ref_rows), context
        return
    # An un-ORDERed LIMIT may legally return a different page; with
    # ORDER BY the sort-key sequence pins the page down.
    assert len(opt_rows) == len(ref_rows), context
    if query.order_by:
        from repro.sparql.expressions import order_key_for_binding

        keys = lambda rows: [
            tuple(order_key_for_binding(c.expression, mu) for c in query.order_by)
            for mu in rows
        ]
        assert keys(opt_rows) == keys(ref_rows), context


@settings(**_SETTINGS)
@given(query=modifier_queries(), data=datasets())
def test_pushdown_matches_reference_pipeline(query, data):
    """Full pushdown vs. the post-filter pipeline, both engines.

    Covers all three pushdown mechanisms at once: filter-into-scan,
    DISTINCT-before-decode, and LIMIT short-circuit.
    """
    store = TripleStore.from_dataset(data)
    for engine_name in ENGINES:
        optimized = SparqlUOEngine(store, bgp_engine=engine_name, mode="full").execute(query)
        reference = SparqlUOEngine(
            store, bgp_engine=engine_name, mode="base", pushdown=False
        ).execute(query)
        _assert_same_result(query, optimized, reference, engine_name)


@settings(**_SETTINGS)
@given(group=groups_with_filters(), data=datasets())
def test_filter_pushdown_exact_bag_equality(group, data):
    """Filters alone (no paging): results must be *exactly* bag-equal
    across pushdown on/off, engines, and the reference evaluator."""
    query = SelectQuery(None, group)
    store = TripleStore.from_dataset(data)
    reference = execute_query(query, data)
    for engine_name in ENGINES:
        for pushdown in (True, False):
            result = SparqlUOEngine(
                store, bgp_engine=engine_name, mode="full", pushdown=pushdown
            ).execute(query)
            assert result.solutions == reference, (engine_name, pushdown)


@settings(**_SETTINGS)
@given(query=modifier_queries(), data=datasets())
def test_engine_matches_reference_semantics(query, data):
    """The optimized stack vs. Definition 7's bottom-up evaluator with
    the modifier pipeline applied on top (binary-form FilterOp path)."""
    reference_rows = _rows(execute_query(query, data))
    store = TripleStore.from_dataset(data)
    for engine_name in ENGINES:
        result = SparqlUOEngine(store, bgp_engine=engine_name, mode="full").execute(query)
        opt_rows = _rows(result)
        if query.limit is None and not query.offset:
            assert oracle.as_counter(opt_rows) == oracle.as_counter(reference_rows), engine_name
        else:
            assert len(opt_rows) == len(reference_rows), engine_name


@settings(**_SETTINGS)
@given(query=modifier_queries(), data=datasets())
def test_limit_short_circuit_returns_a_valid_page(query, data):
    """Whatever page a LIMIT short-circuit returns must be a sub-multiset
    of the query's full (un-paged) result."""
    if query.limit is None and not query.offset:
        return
    full_query = SelectQuery(
        query.variables,
        query.where,
        distinct=query.distinct,
        reduced=query.reduced,
        order_by=query.order_by,
    )
    store = TripleStore.from_dataset(data)
    for engine_name in ENGINES:
        engine = SparqlUOEngine(store, bgp_engine=engine_name, mode="full")
        page = _rows(engine.execute(query))
        full = _rows(engine.execute(full_query))
        assert oracle.contained_in(page, full), engine_name
