"""Unit tests for sampling-based cardinality estimation (§5.1.2)."""

import pytest

from repro.bgp import CardinalityEstimator, pattern_count
from repro.rdf import Dataset, IRI, Triple, TriplePattern, Variable
from repro.storage import TripleStore

EX = "http://x/"
P, Q = IRI(EX + "p"), IRI(EX + "q")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture(scope="module")
def store():
    d = Dataset()
    # 20 subjects, each with 3 p-edges; 10 of them have a q-edge.
    for i in range(20):
        s = IRI(EX + f"s{i}")
        for j in range(3):
            d.add_spo(s, P, IRI(EX + f"o{i}_{j}"))
        if i < 10:
            d.add_spo(s, Q, IRI(EX + f"t{i}"))
    return TripleStore.from_dataset(d)


class TestSinglePattern:
    def test_exact_count(self, store):
        est = CardinalityEstimator(store)
        assert est.single_pattern(TriplePattern(X, P, Y)) == 60
        assert est.single_pattern(TriplePattern(X, Q, Y)) == 10

    def test_constant_anchored(self, store):
        est = CardinalityEstimator(store)
        assert est.single_pattern(TriplePattern(IRI(EX + "s0"), P, Y)) == 3

    def test_absent_constant(self, store):
        est = CardinalityEstimator(store)
        assert est.single_pattern(TriplePattern(IRI(EX + "missing"), P, Y)) == 0


class TestSequences:
    def test_empty_sequence(self, store):
        final, steps = CardinalityEstimator(store).estimate_sequence([])
        assert final == 1.0 and steps == []

    def test_two_pattern_join_estimate(self, store):
        est = CardinalityEstimator(store, sample_size=64, seed=1)
        patterns = [TriplePattern(X, Q, Y), TriplePattern(X, P, Z)]
        final, steps = est.estimate_sequence(patterns)
        # Exactly 10 subjects have q; each has 3 p-edges → true card 30.
        assert steps[0] == 10.0
        assert final == pytest.approx(30.0, rel=0.4)

    def test_floor_is_one(self, store):
        est = CardinalityEstimator(store)
        patterns = [
            TriplePattern(X, Q, Y),
            TriplePattern(X, IRI(EX + "nothere"), Z),
        ]
        final, _ = est.estimate_sequence(patterns)
        assert final == 1.0

    def test_deterministic_with_seed(self, store):
        patterns = [TriplePattern(X, P, Y), TriplePattern(X, Q, Z)]
        one = CardinalityEstimator(store, seed=5).estimate(patterns)
        two = CardinalityEstimator(store, seed=5).estimate(patterns)
        assert one == two

    def test_invalid_sample_size(self, store):
        with pytest.raises(ValueError):
            CardinalityEstimator(store, sample_size=0)


class TestPatternCountWithCandidates:
    def test_no_candidates_is_plain_count(self, store):
        assert pattern_count(store, TriplePattern(X, Q, Y)) == 10

    def test_subject_candidates_with_bound_object(self, store):
        s0 = store.lookup(IRI(EX + "s0"))
        s15 = store.lookup(IRI(EX + "s15"))  # has no q-edge
        pattern = TriplePattern(X, Q, IRI(EX + "t0"))
        assert pattern_count(store, pattern, {"x": {s0, s15}}) == 1

    def test_unusable_candidates_fall_back(self, store):
        s0 = store.lookup(IRI(EX + "s0"))
        # Object position free → falls back to the unrestricted count.
        pattern = TriplePattern(X, Q, Y)
        assert pattern_count(store, pattern, {"x": {s0}}) == 10
