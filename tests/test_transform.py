"""Unit tests for merge/inject transformations and the cost-driven
transformer (Definitions 9–10, Theorems 1–2, Algorithms 2–4)."""

import pytest

from repro.bgp import WCOJoinEngine
from repro.core import (
    BETree,
    BGPNode,
    CostModel,
    OptionalNode,
    UnionNode,
    can_inject,
    can_merge,
    decide_inject,
    decide_merge,
    multi_level_transform,
    perform_inject,
    perform_merge,
    single_level_transform,
)
from repro.rdf import Dataset, IRI, Literal
from repro.sparql import SelectQuery, execute_query, parse_group
from repro.storage import TripleStore

EX = "http://x/"


def tree_of(text: str) -> BETree:
    return BETree.from_group(parse_group(text))


def results_of(tree: BETree, dataset: Dataset):
    return execute_query(SelectQuery(None, tree.to_group()), dataset)


@pytest.fixture(scope="module")
def presidents() -> Dataset:
    """Figure 6/7's DBpedia fragment.

    ``link → Pres`` is highly selective (4 entities); ``same``, ``name``
    and ``label`` cover *every* entity (``same`` with fan-out 2), so a
    BGP anchored on ``same`` neither shrinks when coalesced nor
    amortizes its double evaluation — the unfavorable-merge regime of
    Figure 7 — while anchoring on ``link`` is the favorable regime of
    Figure 6.
    """
    d = Dataset()
    link, pres = IRI(EX + "link"), IRI(EX + "Pres")
    name, label, same = IRI(EX + "name"), IRI(EX + "label"), IRI(EX + "same")
    for i in range(300):
        p = IRI(EX + f"e{i}")
        if i < 4:
            d.add_spo(p, link, pres)
        if i % 2 == 0:
            d.add_spo(p, name, Literal(f"n{i}"))
        else:
            d.add_spo(p, label, Literal(f"n{i}"))
        d.add_spo(p, same, IRI(EX + f"ext{i}"))
        d.add_spo(p, same, IRI(EX + f"ext{i}b"))
    return d


@pytest.fixture(scope="module")
def cost_model(presidents) -> CostModel:
    return CostModel(WCOJoinEngine(TripleStore.from_dataset(presidents)))


UNION_QUERY = (
    "{ ?x <http://x/link> <http://x/Pres> ."
    "  { ?x <http://x/name> ?n } UNION { ?x <http://x/label> ?n } }"
)
OPTIONAL_QUERY = (
    "{ ?x <http://x/link> <http://x/Pres> ."
    "  OPTIONAL { ?x <http://x/same> ?s } }"
)


class TestConditions:
    def test_can_merge_positive(self):
        tree = tree_of(UNION_QUERY)
        p1, union = tree.root.children
        assert can_merge(tree.root, p1, union)

    def test_can_merge_requires_coalescable_branch(self):
        tree = tree_of(
            "{ ?x <http://x/link> <http://x/Pres> ."
            "  { ?a <http://x/name> ?n } UNION { ?a <http://x/label> ?n } }"
        )
        p1, union = tree.root.children
        assert not can_merge(tree.root, p1, union)

    def test_can_merge_rejects_empty_bgp(self):
        tree = tree_of(UNION_QUERY)
        p1, union = tree.root.children
        tree.root.children[0] = BGPNode([])
        assert not can_merge(tree.root, tree.root.children[0], union)

    def test_can_merge_blocked_by_unsafe_relocation(self):
        # P1 sits left of an OPTIONAL sharing an uncertain variable with
        # it; moving P1 into the UNION on the right would change what
        # the OPTIONAL left-joins against.
        tree = tree_of(
            "{ ?x <http://x/name> ?n ."
            "  OPTIONAL { ?x <http://x/same> ?s } "
            "  { ?x <http://x/name> ?m } UNION { ?x <http://x/label> ?m } }"
        )
        p1 = tree.root.children[0]
        union = tree.root.children[2]
        assert isinstance(union, UnionNode)
        assert not can_merge(tree.root, p1, union)

    def test_can_merge_blocked_by_optional_headed_branch(self):
        # Prefix safety: merging P1 into a branch whose group *starts*
        # with an OPTIONAL sharing unbound variables with P1 would turn
        # "P1 ⋈ (identity ⟕ X)" into "P1 ⟕ X" — not equivalent when
        # some P1 rows are incompatible with every X row (they would
        # survive bare instead of being dropped).
        tree = tree_of(
            "{ ?v1 <http://x/p> ?v2 ."
            "  { ?v1 <http://x/name> ?v2 } UNION"
            "  { OPTIONAL { ?v2 <http://x/q> ?v1 } } }"
        )
        p1, union = tree.root.children
        assert isinstance(union, UnionNode)
        assert not can_merge(tree.root, p1, union)

    def test_transform_modes_preserve_optional_headed_union_semantics(self):
        """Regression: the cost-driven transformer used to merge a BGP
        into an OPTIONAL-headed UNION branch, changing the left side of
        that branch's left join (found by the mode-equivalence property
        suite; minimized here)."""
        d = Dataset()
        s0, s1, s2 = IRI(EX + "s0"), IRI(EX + "s1"), IRI(EX + "s2")
        p0 = IRI(EX + "p0")
        d.add_spo(s0, p0, s0)
        d.add_spo(s0, p0, s2)
        d.add_spo(s0, p0, s1)
        group = parse_group(
            "{ ?v1 ?v0 ?v2 ."
            "  { ?v0 ?v0 ?v0 . ?v0 ?v0 ?v1 } UNION"
            "  { OPTIONAL { ?v0 ?v1 ?v0 } } }"
        )
        from repro.core import SparqlUOEngine

        expected = execute_query(SelectQuery(None, group), d)
        for mode in ("base", "tt", "cp", "full"):
            for bgp_engine in ("wco", "hashjoin"):
                engine = SparqlUOEngine.for_dataset(d, bgp_engine=bgp_engine, mode=mode)
                result = engine.execute(SelectQuery(None, group))
                assert result.solutions == expected, (mode, bgp_engine)

    def test_can_inject_positive(self):
        tree = tree_of(OPTIONAL_QUERY)
        p1, optional = tree.root.children
        assert can_inject(tree.root, p1, optional)

    def test_can_inject_requires_right_side(self):
        tree = tree_of(
            "{ OPTIONAL { ?x <http://x/same> ?s } ?x <http://x/link> <http://x/Pres> . }"
        )
        optional, p1 = tree.root.children
        assert isinstance(optional, OptionalNode)
        assert not can_inject(tree.root, p1, optional)

    def test_can_inject_requires_coalescable_child(self):
        tree = tree_of(
            "{ ?x <http://x/link> <http://x/Pres> . OPTIONAL { ?a <http://x/same> ?s } }"
        )
        p1, optional = tree.root.children
        assert not can_inject(tree.root, p1, optional)


class TestPerformAndUndo:
    def test_merge_action(self, presidents):
        tree = tree_of(UNION_QUERY)
        p1, union = tree.root.children
        perform_merge(tree.root, p1, union)
        # P1's slot becomes a retained empty BGP node.
        assert isinstance(tree.root.children[0], BGPNode)
        assert tree.root.children[0].is_empty()
        # Every branch now contains the coalesced patterns.
        for branch in union.branches:
            (bgp,) = branch.children
            assert len(bgp.patterns) == 2

    def test_merge_preserves_semantics(self, presidents):
        tree = tree_of(UNION_QUERY)
        before = results_of(tree, presidents)
        p1, union = tree.root.children
        perform_merge(tree.root, p1, union)
        assert results_of(tree, presidents) == before

    def test_merge_undo_restores_tree_and_identity(self, presidents):
        tree = tree_of(UNION_QUERY)
        p1, union = tree.root.children
        before = results_of(tree, presidents)
        undo = perform_merge(tree.root, p1, union)
        undo()
        assert tree.root.children[0] is p1  # identity preserved
        assert len(p1.patterns) == 1
        assert results_of(tree, presidents) == before

    def test_inject_action(self, presidents):
        tree = tree_of(OPTIONAL_QUERY)
        p1, optional = tree.root.children
        perform_inject(tree.root, p1, optional)
        # P1 keeps its occurrence…
        assert tree.root.children[0] is p1 and len(p1.patterns) == 1
        # …and the OPTIONAL's group gained the coalesced copy.
        (bgp,) = optional.group.children
        assert len(bgp.patterns) == 2

    def test_inject_preserves_semantics(self, presidents):
        tree = tree_of(OPTIONAL_QUERY)
        before = results_of(tree, presidents)
        p1, optional = tree.root.children
        perform_inject(tree.root, p1, optional)
        assert results_of(tree, presidents) == before

    def test_inject_undo(self, presidents):
        tree = tree_of(OPTIONAL_QUERY)
        p1, optional = tree.root.children
        undo = perform_inject(tree.root, p1, optional)
        undo()
        (bgp,) = optional.group.children
        assert len(bgp.patterns) == 1


class TestDecisions:
    def test_favorable_inject_has_negative_delta(self, cost_model):
        """Figure 6: selective BGP injected into a fat OPTIONAL."""
        tree = tree_of(OPTIONAL_QUERY)
        p1, optional = tree.root.children
        delta = decide_inject(cost_model, tree.root, p1, optional)
        assert delta < 0
        # decide_inject keeps profitable transformations applied.
        (bgp,) = optional.group.children
        assert len(bgp.patterns) == 2

    def test_unfavorable_merge_is_rejected(self, cost_model):
        """Figure 7: an unselective BGP should not be merged."""
        tree = tree_of(
            "{ ?x <http://x/same> ?s ."
            "  { ?x <http://x/name> ?n } UNION { ?x <http://x/label> ?n } }"
        )
        p1, union = tree.root.children
        delta = decide_merge(cost_model, tree.root, p1, union)
        probe = tree.root.children[0]
        assert probe is p1 and len(p1.patterns) == 1  # undone
        if delta < 0:
            pytest.fail("low-selectivity merge should not look profitable")

    def test_favorable_merge_has_negative_delta(self, cost_model):
        tree = tree_of(UNION_QUERY)
        p1, union = tree.root.children
        delta = decide_merge(cost_model, tree.root, p1, union)
        assert delta < 0
        # decide_merge probes and undoes; the tree must be unchanged.
        assert tree.root.children[0] is p1

    def test_decide_merge_zero_when_not_applicable(self, cost_model):
        tree = tree_of(
            "{ ?x <http://x/link> <http://x/Pres> ."
            "  { ?a <http://x/name> ?n } UNION { ?a <http://x/label> ?n } }"
        )
        p1, union = tree.root.children
        assert decide_merge(cost_model, tree.root, p1, union) == 0.0


class TestSingleLevel:
    def test_merge_applied(self, cost_model, presidents):
        tree = tree_of(UNION_QUERY)
        before = results_of(tree, presidents)
        report = single_level_transform(cost_model, tree.root)
        assert report.merges == 1
        assert results_of(tree, presidents) == before

    def test_skip_cp_equivalent(self, cost_model):
        """§6's special case: lone BGP before the operator is left to CP."""
        tree = tree_of(OPTIONAL_QUERY)
        report = single_level_transform(cost_model, tree.root, skip_cp_equivalent=True)
        assert report.transformations == 0

    def test_inject_into_multiple_optionals(self, cost_model, presidents):
        tree = tree_of(
            "{ ?x <http://x/link> <http://x/Pres> . ?x <http://x/name> ?n ."
            "  OPTIONAL { ?x <http://x/same> ?s } OPTIONAL { ?x <http://x/label> ?l } }"
        )
        before = results_of(tree, presidents)
        report = single_level_transform(cost_model, tree.root)
        assert report.injects >= 1
        assert results_of(tree, presidents) == before


class TestMultiLevel:
    def test_post_order_reaches_nested_levels(self, cost_model, presidents):
        tree = tree_of(
            "{ ?x <http://x/link> <http://x/Pres> ."
            "  OPTIONAL { ?x <http://x/name> ?n ."
            "    OPTIONAL { ?x <http://x/same> ?s } } }"
        )
        before = results_of(tree, presidents)
        report = multi_level_transform(cost_model, tree)
        assert report.considered >= 2  # outer and inner levels probed
        assert results_of(tree, presidents) == before

    def test_report_totals(self, cost_model):
        tree = tree_of(UNION_QUERY)
        report = multi_level_transform(cost_model, tree)
        assert report.transformations == report.merges + report.injects
        if report.transformations:
            assert report.total_delta < 0
