"""Unit tests for the term dictionary."""

import pytest

from repro.rdf import IRI, Literal, TermDictionary, Triple, Variable

A, B = IRI("http://x/a"), IRI("http://x/b")


class TestEncode:
    def test_ids_are_dense_first_seen(self):
        d = TermDictionary()
        assert d.encode(A) == 0
        assert d.encode(B) == 1
        assert d.encode(A) == 0  # stable
        assert len(d) == 2

    def test_decode_round_trip(self):
        d = TermDictionary()
        term_id = d.encode(Literal("x", language="en"))
        assert d.decode(term_id) == Literal("x", language="en")

    def test_decode_unknown_raises(self):
        with pytest.raises(KeyError):
            TermDictionary().decode(0)

    def test_variables_rejected(self):
        with pytest.raises(ValueError):
            TermDictionary().encode(Variable("x"))

    def test_lookup_never_mints(self):
        d = TermDictionary()
        assert d.lookup(A) is None
        assert len(d) == 0
        d.encode(A)
        assert d.lookup(A) == 0

    def test_contains(self):
        d = TermDictionary()
        d.encode(A)
        assert A in d and B not in d

    def test_distinct_literals_by_language(self):
        d = TermDictionary()
        one = d.encode(Literal("x", language="en"))
        two = d.encode(Literal("x", language="fr"))
        three = d.encode(Literal("x"))
        assert len({one, two, three}) == 3


class TestTriples:
    def test_encode_decode_triple(self):
        d = TermDictionary()
        t = Triple(A, B, Literal("v"))
        assert d.decode_triple(d.encode_triple(t)) == t

    def test_encode_many(self):
        d = TermDictionary()
        triples = [Triple(A, B, A), Triple(B, B, B)]
        encoded = list(d.encode_many(triples))
        assert len(encoded) == 2
        assert all(isinstance(x, tuple) and len(x) == 3 for x in encoded)
