"""Unit tests for the SPARQL parser."""

import pytest

from repro.rdf import IRI, Literal, TriplePattern, Variable
from repro.sparql import (
    GroupGraphPattern,
    OptionalExpression,
    SparqlSyntaxError,
    UnionExpression,
    UnsupportedFeatureError,
    format_group,
    parse_group,
    parse_query,
)

X = Variable("x")


class TestProjection:
    def test_explicit_variables(self):
        q = parse_query("SELECT ?a ?b WHERE { ?a ?p ?b }")
        assert q.projection_names() == ["a", "b"]

    def test_star(self):
        q = parse_query("SELECT * WHERE { ?a ?p ?b }")
        assert q.variables is None

    def test_bare_select_where_is_select_all(self):
        # The appendix queries are written 'SELECT WHERE { … }'.
        q = parse_query("SELECT WHERE { ?a ?p ?b }")
        assert q.variables is None

    def test_where_keyword_optional(self):
        q = parse_query("SELECT ?a { ?a ?p ?b }")
        assert q.projection_names() == ["a"]


class TestTriples:
    def test_iri_terms(self):
        q = parse_query("SELECT * WHERE { <http://s> <http://p> <http://o> }")
        (pattern,) = q.where.elements
        assert pattern == TriplePattern(IRI("http://s"), IRI("http://p"), IRI("http://o"))

    def test_prefixed_names_from_prologue(self):
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT * WHERE { ex:s ex:p ex:o }"
        )
        (pattern,) = q.where.elements
        assert pattern.subject == IRI("http://e/s")

    def test_well_known_prefixes_preloaded(self):
        q = parse_query("SELECT * WHERE { ?x dbo:wikiPageWikiLink ?y }")
        (pattern,) = q.where.elements
        assert pattern.predicate == IRI("http://dbpedia.org/ontology/wikiPageWikiLink")

    def test_prologue_overrides_preloaded(self):
        q = parse_query("PREFIX dbo: <http://other/> SELECT * WHERE { ?x dbo:p ?y }")
        (pattern,) = q.where.elements
        assert pattern.predicate == IRI("http://other/p")

    def test_a_expands_to_rdf_type(self):
        q = parse_query("SELECT * WHERE { ?x a dbo:Person }")
        (pattern,) = q.where.elements
        assert pattern.predicate.value.endswith("#type")

    def test_string_literal_object(self):
        q = parse_query('SELECT * WHERE { ?x foaf:name "Bill"@en }')
        (pattern,) = q.where.elements
        assert pattern.object == Literal("Bill", language="en")

    def test_typed_literal_object(self):
        q = parse_query('SELECT * WHERE { ?x dbp:iata "5"^^xsd:integer }')
        (pattern,) = q.where.elements
        assert pattern.object.datatype.endswith("integer")

    def test_integer_shorthand(self):
        q = parse_query("SELECT * WHERE { ?x dbo:number 42 }")
        (pattern,) = q.where.elements
        assert pattern.object == Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer")

    def test_multiple_triples_with_dots(self):
        q = parse_query("SELECT * WHERE { ?a ?p ?b . ?b ?q ?c . }")
        assert len(q.where.elements) == 2

    def test_undeclared_prefix(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?x nosuch:p ?y }")


class TestStructure:
    def test_nested_group(self):
        q = parse_query("SELECT * WHERE { { ?a ?p ?b } }")
        (group,) = q.where.elements
        assert isinstance(group, GroupGraphPattern)

    def test_union(self):
        q = parse_query("SELECT * WHERE { { ?a ?p ?b } UNION { ?a ?q ?b } }")
        (union,) = q.where.elements
        assert isinstance(union, UnionExpression)
        assert len(union.branches) == 2

    def test_chained_union_is_nary(self):
        q = parse_query(
            "SELECT * WHERE { { ?a ?p ?b } UNION { ?a ?q ?b } UNION { ?a ?r ?b } }"
        )
        (union,) = q.where.elements
        assert len(union.branches) == 3

    def test_optional(self):
        q = parse_query("SELECT * WHERE { ?a ?p ?b OPTIONAL { ?b ?q ?c } }")
        assert isinstance(q.where.elements[1], OptionalExpression)

    def test_nested_optionals(self):
        q = parse_query(
            "SELECT * WHERE { ?a ?p ?b OPTIONAL { ?b ?q ?c OPTIONAL { ?c ?r ?d } } }"
        )
        outer = q.where.elements[1]
        assert isinstance(outer.pattern.elements[1], OptionalExpression)

    def test_empty_group(self):
        q = parse_query("SELECT * WHERE { }")
        assert q.where.elements == ()

    def test_stray_dots_tolerated(self):
        q = parse_query("SELECT * WHERE { ?a ?p ?b . . OPTIONAL { ?b ?q ?c } . }")
        assert len(q.where.elements) == 2


class TestErrors:
    def test_missing_closing_brace(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?a ?p ?b ")

    def test_trailing_garbage(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?a ?p ?b } ?extra")

    def test_not_select(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("{ ?a ?p ?b }")

    @pytest.mark.parametrize(
        "query",
        [
            "ASK { ?x ?p ?y }",
            "CONSTRUCT { ?x ?p ?y } WHERE { ?x ?p ?y }",
            "DESCRIBE <http://example.org/x>",
        ],
    )
    def test_unsupported_features(self, query):
        with pytest.raises(UnsupportedFeatureError):
            parse_query(query)

    def test_select_star_with_group_by_is_rejected(self):
        # GROUP BY itself parses now; the * projection is what's invalid.
        with pytest.raises(SparqlSyntaxError, match="SELECT \\*"):
            parse_query("SELECT * WHERE { ?x ?p ?y } GROUP BY ?x")

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT DISTINCT ?x WHERE { ?x ?p ?y }",
            "SELECT REDUCED ?x WHERE { ?x ?p ?y }",
            "SELECT * WHERE { ?x ?p ?y FILTER(?y) }",
            "SELECT * WHERE { ?x ?p ?y FILTER(?y > 3) }",
            "SELECT * WHERE { ?x ?p ?y FILTER BOUND(?y) }",
            "SELECT * WHERE { ?x ?p ?y } LIMIT 10",
            "SELECT * WHERE { ?x ?p ?y } OFFSET 5 LIMIT 10",
            "SELECT * WHERE { ?x ?p ?y } ORDER BY DESC(?y) ?x LIMIT 3",
        ],
    )
    def test_extended_fragment_now_parses(self, query):
        # These were rejected in the paper-fragment-only parser; the
        # FILTER / solution-modifier extension accepts them.
        parse_query(query)

    def test_unspaced_less_than_is_not_an_iri(self):
        # '<?y&&?y>' must lex as comparison operators, not an IRI —
        # absolute IRIs always carry a scheme prefix (BASE is rejected).
        spaced = parse_query("SELECT * WHERE { ?x ?p ?y FILTER(?x < ?y && ?y > 2) }")
        unspaced = parse_query("SELECT * WHERE { ?x ?p ?y FILTER(?x<?y&&?y>2) }")
        assert unspaced == spaced


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "{ ?a ?p ?b . }",
            "{ ?a ?p ?b . OPTIONAL { ?b ?q ?c . } }",
            "{ { ?a ?p ?b . } UNION { ?a ?q ?b . } }",
            "{ ?a ?p ?b . { { ?b ?q ?c . } UNION { ?b ?r ?c . OPTIONAL { ?c ?s ?d . } } } }",
        ],
    )
    def test_format_then_parse_is_identity(self, text):
        group = parse_group(text)
        assert parse_group(format_group(group)) == group
