"""Smoke tests: the shipped examples run and print what they promise."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Figure 1(a)" in out and "Figure 1(b)" in out
    assert "George Walker Bush" in out
    assert "(no reference)" in out  # OPTIONAL kept an unmatched president
    assert "GROUP" in out  # explain output


def test_incomplete_profiles():
    out = run_example("incomplete_profiles.py")
    assert "professor profiles" in out
    assert "candidate-restricted" in out
    # Pruning materializes strictly fewer rows than base.
    base_line = next(line for line in out.splitlines() if line.strip().startswith("base"))
    full_line = next(line for line in out.splitlines() if line.strip().startswith("full"))
    base_rows = int(base_line.split("rows materialized")[0].split(",")[-1].strip())
    full_rows = int(full_line.split("rows materialized")[0].split(",")[-1].strip())
    assert full_rows < base_rows


def test_filter_limit():
    out = run_example("filter_limit.py")
    assert "FILTER + ORDER BY + LIMIT 5" in out
    assert "UndergraduateStudent0" in out
    assert "FILTER REGEX" in out  # the filter shows up in the plan
    # LIMIT early termination materializes strictly fewer BGP rows.
    push_line = next(l for l in out.splitlines() if l.strip().startswith("pushdown:"))
    post_line = next(l for l in out.splitlines() if l.strip().startswith("post-filter:"))
    push_rows = int(push_line.split("results,")[1].split("BGP rows")[0].strip())
    post_rows = int(post_line.split("results,")[1].split("BGP rows")[0].strip())
    assert push_rows < post_rows


@pytest.mark.slow
def test_knowledge_fusion():
    out = run_example("knowledge_fusion.py")
    assert "strategy" in out and "full" in out
    assert "transformed plan" in out


@pytest.mark.slow
def test_engine_comparison_quick():
    out = run_example("engine_comparison.py", "--quick")
    assert "LUBM / wco" in out and "DBpedia / wco" in out
