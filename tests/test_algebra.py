"""Unit tests for the graph-pattern AST and binary conversion."""

import pytest

from repro.rdf import IRI, TriplePattern, Variable
from repro.sparql import (
    And,
    EmptyPattern,
    GroupGraphPattern,
    OptionalExpression,
    OptionalOp,
    SelectQuery,
    UnionExpression,
    UnionOp,
    pattern_variables,
    to_binary,
)

P = IRI("http://x/p")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")
T1 = TriplePattern(X, P, Y)
T2 = TriplePattern(Y, P, Z)
T3 = TriplePattern(Z, P, X)


class TestConstruction:
    def test_union_needs_two_branches(self):
        with pytest.raises(ValueError):
            UnionExpression([GroupGraphPattern([T1])])

    def test_union_branches_must_be_groups(self):
        with pytest.raises(TypeError):
            UnionExpression([T1, T2])

    def test_optional_body_must_be_group(self):
        with pytest.raises(TypeError):
            OptionalExpression(T1)

    def test_group_rejects_junk(self):
        with pytest.raises(TypeError):
            GroupGraphPattern(["nope"])

    def test_select_query_validates(self):
        with pytest.raises(TypeError):
            SelectQuery(["x"], GroupGraphPattern([T1]))
        with pytest.raises(TypeError):
            SelectQuery(None, T1)


class TestToBinary:
    def test_single_triple(self):
        assert to_binary(GroupGraphPattern([T1])) == T1

    def test_empty_group(self):
        assert to_binary(GroupGraphPattern([])) == EmptyPattern()

    def test_left_fold_of_and(self):
        node = to_binary(GroupGraphPattern([T1, T2, T3]))
        assert node == And(And(T1, T2), T3)

    def test_optional_left_associative(self):
        group = GroupGraphPattern(
            [T1, OptionalExpression(GroupGraphPattern([T2]))]
        )
        assert to_binary(group) == OptionalOp(T1, T2)

    def test_leading_optional_attaches_to_empty(self):
        group = GroupGraphPattern([OptionalExpression(GroupGraphPattern([T1]))])
        assert to_binary(group) == OptionalOp(EmptyPattern(), T1)

    def test_pattern_after_optional_joins_whole(self):
        group = GroupGraphPattern(
            [T1, OptionalExpression(GroupGraphPattern([T2])), T3]
        )
        assert to_binary(group) == And(OptionalOp(T1, T2), T3)

    def test_union_folds_left(self):
        union = UnionExpression(
            [GroupGraphPattern([T1]), GroupGraphPattern([T2]), GroupGraphPattern([T3])]
        )
        assert to_binary(GroupGraphPattern([union])) == UnionOp(UnionOp(T1, T2), T3)

    def test_nested_group_is_transparent(self):
        group = GroupGraphPattern([GroupGraphPattern([T1, T2])])
        assert to_binary(group) == And(T1, T2)


class TestPatternVariables:
    def test_triple(self):
        assert pattern_variables(T1) == {"x", "y"}

    def test_group(self):
        assert pattern_variables(GroupGraphPattern([T1, T2])) == {"x", "y", "z"}

    def test_union_and_optional(self):
        union = UnionExpression([GroupGraphPattern([T1]), GroupGraphPattern([T2])])
        group = GroupGraphPattern(
            [union, OptionalExpression(GroupGraphPattern([T3]))]
        )
        assert pattern_variables(group) == {"x", "y", "z"}

    def test_binary_forms(self):
        assert pattern_variables(And(T1, T2)) == {"x", "y", "z"}
        assert pattern_variables(EmptyPattern()) == frozenset()
