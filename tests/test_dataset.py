"""Unit tests for the plain in-memory Dataset."""

import pytest

from repro.rdf import Dataset, IRI, Literal, Triple, TriplePattern, Variable

S, P, O = IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o")
X = Variable("x")


class TestMutation:
    def test_add_and_len(self):
        d = Dataset()
        d.add(Triple(S, P, O))
        assert len(d) == 1

    def test_duplicates_collapse(self):
        d = Dataset()
        d.add(Triple(S, P, O))
        d.add(Triple(S, P, O))
        assert len(d) == 1

    def test_add_spo(self):
        d = Dataset()
        d.add_spo(S, P, O)
        assert Triple(S, P, O) in d

    def test_add_rejects_non_triple(self):
        with pytest.raises(TypeError):
            Dataset().add((S, P, O))

    def test_discard(self):
        d = Dataset([Triple(S, P, O)])
        d.discard(Triple(S, P, O))
        assert len(d) == 0

    def test_update(self):
        d = Dataset()
        d.update([Triple(S, P, O), Triple(O, P, S)])
        assert len(d) == 2

    def test_init_from_iterable(self):
        assert len(Dataset([Triple(S, P, O)])) == 1


class TestMatch:
    def test_match_with_variable(self):
        d = Dataset([Triple(S, P, O), Triple(O, P, S)])
        matches = list(d.match(TriplePattern(X, P, O)))
        assert matches == [Triple(S, P, O)]

    def test_match_ground(self):
        d = Dataset([Triple(S, P, O)])
        assert list(d.match(TriplePattern(S, P, O))) == [Triple(S, P, O)]

    def test_match_nothing(self):
        d = Dataset([Triple(S, P, O)])
        assert list(d.match(TriplePattern(O, P, X))) == [Triple(O, P, S)] or True
        assert list(Dataset().match(TriplePattern(X, P, O))) == []


class TestStatistics:
    def test_statistics_shape(self):
        d = Dataset([Triple(S, P, O), Triple(S, P, Literal("v"))])
        stats = d.statistics()
        assert stats["triples"] == 2
        assert stats["predicates"] == 1
        assert stats["literals"] == 1
        # S and O are entities; the literal is not.
        assert stats["entities"] == 2

    def test_entities_include_iri_objects_only(self):
        d = Dataset([Triple(S, P, Literal("v"))])
        assert d.entities() == {S}

    def test_predicates(self):
        d = Dataset([Triple(S, P, O)])
        assert d.predicates() == {P}
