"""Shared fixtures: small hand-built datasets and engine factories."""

from __future__ import annotations

import pytest

from repro.rdf import Dataset, IRI, Literal
from repro.storage import TripleStore

EX = "http://example.org/"


def ex(name: str) -> IRI:
    """Shorthand for an example.org IRI."""
    return IRI(EX + name)


@pytest.fixture(scope="session")
def presidents_dataset() -> Dataset:
    """The paper's Figure 1 running example, in miniature.

    Five presidents link to President_of_the_United_States; names are
    split between foaf:name and rdfs:label (UNION motivation); only
    some have owl:sameAs (OPTIONAL motivation); plus 200 non-president
    persons that make the name/sameAs predicates low-selectivity.
    """
    d = Dataset()
    link = ex("wikiPageWikiLink")
    pres = ex("President_of_the_United_States")
    foaf_name = ex("foaf_name")
    label = ex("rdfs_label")
    same = ex("sameAs")
    for i in range(5):
        p = ex(f"president{i}")
        d.add_spo(p, link, pres)
        if i % 2 == 0:
            d.add_spo(p, foaf_name, Literal(f"President {i}"))
        else:
            d.add_spo(p, label, Literal(f"President {i}", language="en"))
        if i < 2:
            d.add_spo(p, same, ex(f"external{i}"))
    for i in range(200):
        p = ex(f"person{i}")
        d.add_spo(p, foaf_name, Literal(f"Person {i}"))
        if i % 2 == 0:
            d.add_spo(p, label, Literal(f"Person {i}", language="en"))
        if i % 3 == 0:
            d.add_spo(p, same, ex(f"ext{i}"))
    return d


@pytest.fixture(scope="session")
def presidents_store(presidents_dataset) -> TripleStore:
    return TripleStore.from_dataset(presidents_dataset)


@pytest.fixture(scope="session")
def university_dataset() -> Dataset:
    """A small academic graph exercising joins, optionals and unions."""
    d = Dataset()
    works = ex("worksFor")
    head = ex("headOf")
    advisor = ex("advisor")
    teaches = ex("teacherOf")
    takes = ex("takesCourse")
    rtype = ex("type")
    name = ex("name")
    prof_cls = ex("FullProfessor")
    for dept_index in range(3):
        dept = ex(f"dept{dept_index}")
        for f in range(4):
            prof = ex(f"prof{dept_index}_{f}")
            d.add_spo(prof, works, dept)
            d.add_spo(prof, name, Literal(f"Prof {dept_index}.{f}"))
            if f == 0:
                d.add_spo(prof, head, dept)
            if f % 2 == 0:
                d.add_spo(prof, rtype, prof_cls)
            course = ex(f"course{dept_index}_{f}")
            d.add_spo(prof, teaches, course)
            for s in range(3):
                student = ex(f"student{dept_index}_{f}_{s}")
                d.add_spo(student, advisor, prof)
                if s < 2:
                    d.add_spo(student, takes, course)
                d.add_spo(student, name, Literal(f"Student {dept_index}.{f}.{s}"))
    return d


@pytest.fixture(scope="session")
def university_store(university_dataset) -> TripleStore:
    return TripleStore.from_dataset(university_dataset)
