"""Unit tests for the write-ahead log: frame format, damage taxonomy,
fsync policies, truncation, fault sites, and engine-level recovery.

Server-level durability (kill -9 a live ``repro serve`` and assert the
acked updates survive) lives in ``test_chaos.py``; this module covers
the :mod:`repro.storage.wal` primitives in isolation plus the two
in-process recovery entry points (``SparqlUOEngine.from_snapshot`` and
``TripleStore.bulk_replay``).
"""

from __future__ import annotations

import io
import struct
import threading
import zlib

import pytest

from repro import faults
from repro.cli import main as cli_main
from repro.core import SparqlUOEngine
from repro.datasets.lubm import generate_lubm
from repro.storage import TripleStore
from repro.storage.wal import (
    FORMAT_VERSION,
    MAGIC,
    WalCorruptError,
    WalError,
    WalRecord,
    WriteAheadLog,
    recover_wal,
    scan_wal,
)

EX = "http://example.org/wal#"


def insert_stmt(i):
    return f"INSERT DATA {{ <{EX}n{i}> <{EX}tag> <{EX}on> }}"


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    faults.disarm()


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "updates.wal")


def write_frames(path, records):
    """A log written the long way round, for damage-crafting tests."""
    head = struct.Struct("<IQ")
    with open(path, "wb") as handle:
        handle.write(struct.pack("<8sHH", MAGIC, FORMAT_VERSION, 0))
        for generation, text in records:
            payload = text.encode("utf-8")
            frame = head.pack(len(payload), generation) + payload
            handle.write(frame + struct.pack("<I", zlib.crc32(frame)))


# ----------------------------------------------------------------------
# frame round-trips and scanning
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_append_scan_round_trip(self, wal_path):
        with WriteAheadLog(wal_path, policy="always") as wal:
            assert wal.recovered_records == []
            assert not wal.recovered_torn_tail
            wal.append(1, insert_stmt(0))
            wal.append(2, insert_stmt(1))
            assert wal.depth == 2
            assert wal.last_generation == 2
        scan = scan_wal(wal_path)
        assert scan.exists and scan.torn is None
        assert scan.records == [
            WalRecord(1, insert_stmt(0)),
            WalRecord(2, insert_stmt(1)),
        ]

    def test_reopen_recovers_previous_frames(self, wal_path):
        with WriteAheadLog(wal_path, policy="off") as wal:
            wal.append(5, insert_stmt(0))
        with WriteAheadLog(wal_path) as wal:
            assert wal.recovered_records == [WalRecord(5, insert_stmt(0))]
            assert wal.last_generation == 5
            wal.append(6, insert_stmt(1))
            assert wal.depth == 2

    def test_missing_file_scans_as_absent(self, wal_path):
        scan = scan_wal(wal_path)
        assert not scan.exists
        assert scan.records == [] and scan.torn is None

    def test_empty_file_is_clean(self, wal_path):
        open(wal_path, "wb").close()
        scan = scan_wal(wal_path)
        assert scan.exists and scan.torn is None and scan.records == []

    def test_non_ascii_update_text_survives(self, wal_path):
        text = f'INSERT DATA {{ <{EX}café> <{EX}label> "héllo – ✓" }}'
        with WriteAheadLog(wal_path, policy="always") as wal:
            wal.append(1, text)
        assert scan_wal(wal_path).records == [WalRecord(1, text)]

    def test_records_after_filters_on_generation(self, wal_path):
        with WriteAheadLog(wal_path, policy="off") as wal:
            for generation in (1, 2, 3):
                wal.append(generation, insert_stmt(generation))
            assert [r.generation for r in wal.records_after(1)] == [2, 3]
            assert wal.records_after(3) == []

    def test_append_after_close_refuses(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append(1, insert_stmt(0))
        wal.close()  # idempotent

    def test_unknown_policy_rejected(self, wal_path):
        with pytest.raises(ValueError):
            WriteAheadLog(wal_path, policy="sometimes")


# ----------------------------------------------------------------------
# damage taxonomy: torn truncates, corrupt refuses
# ----------------------------------------------------------------------
class TestDamageTaxonomy:
    def test_torn_final_frame_is_reported_not_raised(self, wal_path):
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        data = open(wal_path, "rb").read()
        open(wal_path, "wb").write(data[:-5])  # cut into the final frame
        scan = scan_wal(wal_path)
        assert scan.torn is not None and "truncated" in scan.torn
        assert scan.records == [WalRecord(1, insert_stmt(0))]

    def test_recover_truncates_tear_in_place(self, wal_path):
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        data = open(wal_path, "rb").read()
        open(wal_path, "wb").write(data[:-5])
        recovery = recover_wal(wal_path)
        assert recovery.torn_tail
        assert recovery.records == [WalRecord(1, insert_stmt(0))]
        # The tail is gone on disk: a re-scan is clean.
        scan = scan_wal(wal_path)
        assert scan.torn is None
        assert scan.records == recovery.records

    def test_open_on_torn_log_resumes_appending(self, wal_path):
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        data = open(wal_path, "rb").read()
        open(wal_path, "wb").write(data[:-5])
        with WriteAheadLog(wal_path, policy="always") as wal:
            assert wal.recovered_torn_tail
            assert wal.recovered_records == [WalRecord(1, insert_stmt(0))]
            wal.append(2, insert_stmt(2))
        scan = scan_wal(wal_path)
        assert scan.torn is None
        assert scan.records == [WalRecord(1, insert_stmt(0)), WalRecord(2, insert_stmt(2))]

    def test_short_header_is_torn(self, wal_path):
        open(wal_path, "wb").write(MAGIC[:4])
        scan = scan_wal(wal_path)
        assert scan.torn is not None and "short header" in scan.torn

    def test_bitflip_in_complete_frame_is_corrupt(self, wal_path):
        write_frames(wal_path, [(1, insert_stmt(0))])
        data = bytearray(open(wal_path, "rb").read())
        data[20] ^= 0xFF  # inside the payload, crc now wrong
        open(wal_path, "wb").write(bytes(data))
        with pytest.raises(WalCorruptError, match="checksum mismatch"):
            scan_wal(wal_path)
        with pytest.raises(WalCorruptError):
            recover_wal(wal_path)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(wal_path)

    def test_bad_magic_is_corrupt(self, wal_path):
        open(wal_path, "wb").write(b"NOTAWAL!" + b"\x00" * 8)
        with pytest.raises(WalCorruptError, match="bad magic"):
            scan_wal(wal_path)

    def test_future_version_is_corrupt(self, wal_path):
        open(wal_path, "wb").write(struct.pack("<8sHH", MAGIC, FORMAT_VERSION + 1, 0))
        with pytest.raises(WalCorruptError, match="unsupported WAL format"):
            scan_wal(wal_path)

    def test_reserved_flags_are_corrupt(self, wal_path):
        open(wal_path, "wb").write(struct.pack("<8sHH", MAGIC, FORMAT_VERSION, 7))
        with pytest.raises(WalCorruptError, match="reserved flags"):
            scan_wal(wal_path)

    def test_invalid_utf8_payload_is_corrupt(self, wal_path):
        # Hand-craft a frame whose checksum is right but whose payload
        # cannot decode: the CRC passes, the decode must still refuse.
        payload = b"\xff\xfe\xfd"
        frame = struct.pack("<IQ", len(payload), 1) + payload
        with open(wal_path, "wb") as handle:
            handle.write(struct.pack("<8sHH", MAGIC, FORMAT_VERSION, 0))
            handle.write(frame + struct.pack("<I", zlib.crc32(frame)))
        with pytest.raises(WalCorruptError, match="not UTF-8"):
            scan_wal(wal_path)

    def test_corruption_before_tear_still_refuses(self, wal_path):
        # Frame 0 corrupt, frame 1 torn: corruption wins — dropping a
        # provably-wrong frame and replaying past it would serve a
        # store missing an acked update.
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        data = bytearray(open(wal_path, "rb").read())
        data[20] ^= 0xFF
        open(wal_path, "wb").write(bytes(data[:-5]))
        with pytest.raises(WalCorruptError):
            scan_wal(wal_path)


# ----------------------------------------------------------------------
# fsync policies and group commit
# ----------------------------------------------------------------------
class TestFsyncPolicies:
    def test_always_fsyncs_every_append(self, wal_path):
        with WriteAheadLog(wal_path, policy="always") as wal:
            for i in range(5):
                wal.append(i + 1, insert_stmt(i))
            assert wal.fsync_count == 5
            wal.sync()  # already durable: no extra fsync
            assert wal.fsync_count == 5

    def test_off_never_fsyncs_until_close(self, wal_path):
        wal = WriteAheadLog(wal_path, policy="off")
        for i in range(5):
            wal.sync(wal.append(i + 1, insert_stmt(i)))
        assert wal.fsync_count == 0
        wal.close()  # orderly drain still lands the writeback window
        assert wal.fsync_count == 1

    def test_interval_syncs_on_demand(self, wal_path):
        with WriteAheadLog(wal_path, policy="interval") as wal:
            seq = wal.append(1, insert_stmt(0))
            assert wal.fsync_count == 0  # append alone is not durable
            wal.sync(seq)
            assert wal.fsync_count == 1
            wal.sync(seq)  # already covered: no extra fsync
            assert wal.fsync_count == 1

    def test_group_commit_shares_fsyncs(self, wal_path):
        """Concurrent committers piggyback on the leader's fsync: the
        fsync count stays well below one per append."""
        wal = WriteAheadLog(wal_path, policy="interval")
        barrier = threading.Barrier(8)
        errors = []

        def committer(i):
            try:
                barrier.wait(10)
                for j in range(5):
                    wal.sync(wal.append(i * 100 + j, insert_stmt(i)))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=committer, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert wal.depth == 40
        assert 1 <= wal.fsync_count < 40
        wal.close()
        assert len(scan_wal(wal_path).records) == 40

    def test_stats_snapshot(self, wal_path):
        with WriteAheadLog(wal_path, policy="always") as wal:
            wal.append(1, insert_stmt(0))
            stats = wal.stats()
        assert stats["depth"] == 1 and stats["records_total"] == 1
        assert stats["fsync_count"] >= 1 and stats["fsync_seconds"] >= 0
        assert stats["recovered_torn_tail"] is False


# ----------------------------------------------------------------------
# compaction truncation
# ----------------------------------------------------------------------
class TestTruncation:
    def test_truncate_below_drops_dead_prefix(self, wal_path):
        with WriteAheadLog(wal_path, policy="off") as wal:
            for generation in (1, 2, 3, 4):
                wal.append(generation, insert_stmt(generation))
            assert wal.truncate_below(2) == 2
            assert wal.depth == 2
            # Appends keep working against the republished file.
            wal.append(5, insert_stmt(5))
        scan = scan_wal(wal_path)
        assert [r.generation for r in scan.records] == [3, 4, 5]

    def test_truncate_below_everything_leaves_valid_header(self, wal_path):
        with WriteAheadLog(wal_path, policy="off") as wal:
            wal.append(1, insert_stmt(0))
            assert wal.truncate_below(9) == 1
            assert wal.depth == 0
        scan = scan_wal(wal_path)
        assert scan.records == [] and scan.torn is None

    def test_truncate_below_is_a_no_op_when_nothing_dead(self, wal_path):
        with WriteAheadLog(wal_path, policy="off") as wal:
            wal.append(8, insert_stmt(0))
            before = open(wal_path, "rb").read()
            assert wal.truncate_below(3) == 0
            assert open(wal_path, "rb").read() == before


# ----------------------------------------------------------------------
# fault sites
# ----------------------------------------------------------------------
class TestFaultSites:
    def test_append_fault_leaves_no_partial_frame(self, wal_path):
        wal = WriteAheadLog(wal_path, policy="always")
        wal.append(1, insert_stmt(0))
        faults.arm("wal.append:io_error@1")
        with pytest.raises(OSError):
            wal.append(2, insert_stmt(1))
        faults.disarm()
        # The fault fired before the write: the log holds exactly the
        # acked frame, and the next append lands cleanly.
        wal.append(2, insert_stmt(2))
        wal.close()
        assert [r.generation for r in scan_wal(wal_path).records] == [1, 2]

    def test_fsync_fault_surfaces_to_the_committer(self, wal_path):
        wal = WriteAheadLog(wal_path, policy="interval")
        seq = wal.append(1, insert_stmt(0))
        faults.arm("wal.fsync:io_error@1")
        with pytest.raises(OSError):
            wal.sync(seq)
        faults.disarm()
        wal.sync(seq)  # retry succeeds once the disk recovers
        wal.close()

    def test_replay_fault_is_the_torn_class(self, wal_path):
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        faults.arm("wal.replay:io_error@2")
        scan = scan_wal(wal_path)
        assert scan.torn is not None and "read error" in scan.torn
        assert scan.records == [WalRecord(1, insert_stmt(0))]
        faults.disarm()
        assert len(scan_wal(wal_path).records) == 2  # file unharmed


# ----------------------------------------------------------------------
# engine- and store-level recovery
# ----------------------------------------------------------------------
class TestEngineRecovery:
    @pytest.fixture(scope="class")
    def snap(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("walengine") / "lubm.snap"
        TripleStore.from_dataset(generate_lubm(universities=1, seed=42)).save(str(path))
        return str(path)

    def test_from_snapshot_replays_wal_tail(self, snap, wal_path):
        engine = SparqlUOEngine.from_snapshot(snap)
        base = engine.store.generation
        with WriteAheadLog(wal_path, policy="always") as wal:
            for i in range(3):
                result = engine.update(insert_stmt(i))
                wal.append(result.generation, insert_stmt(i))
        engine.store.close()

        recovered = SparqlUOEngine.from_snapshot(snap, wal=wal_path)
        assert recovered.store.generation == base + 3
        rows = recovered.execute(
            f"SELECT ?s WHERE {{ ?s <{EX}tag> <{EX}on> }}"
        ).solutions
        assert len(rows) == 3
        recovered.store.close()

    def test_from_snapshot_skips_already_compacted_frames(self, snap, wal_path):
        # Frames at or below the snapshot generation are dead weight a
        # crashed compaction may have left behind; replay filters them.
        base = TripleStore.load(snap).generation
        with WriteAheadLog(wal_path, policy="always") as wal:
            wal.append(base, insert_stmt(0))  # dead: already folded in
        engine = SparqlUOEngine.from_snapshot(snap, wal=wal_path)
        assert engine.store.generation == base
        engine.store.close()

    def test_from_snapshot_truncates_torn_tail(self, snap, wal_path):
        engine = SparqlUOEngine.from_snapshot(snap)
        base = engine.store.generation
        with WriteAheadLog(wal_path, policy="always") as wal:
            for i in range(2):
                result = engine.update(insert_stmt(i))
                wal.append(result.generation, insert_stmt(i))
        engine.store.close()
        data = open(wal_path, "rb").read()
        open(wal_path, "wb").write(data[:-3])

        recovered = SparqlUOEngine.from_snapshot(snap, wal=wal_path)
        # The complete first frame replays; the torn second is cut.
        assert recovered.store.generation == base + 1
        assert scan_wal(wal_path).torn is None
        recovered.store.close()

    def test_from_snapshot_refuses_corrupt_wal(self, snap, wal_path):
        write_frames(wal_path, [(10**6, insert_stmt(0))])
        data = bytearray(open(wal_path, "rb").read())
        data[-6] ^= 0xFF
        open(wal_path, "wb").write(bytes(data))
        with pytest.raises(WalCorruptError):
            SparqlUOEngine.from_snapshot(snap, wal=wal_path)

    def test_bulk_replay_defers_sealing(self, snap):
        from repro.rdf import IRI, Triple

        store = TripleStore.load(snap)
        base = len(store)
        with store.bulk_replay():
            for i in range(4):
                store.apply_update(
                    [Triple(IRI(f"{EX}s{i}"), IRI(f"{EX}tag"), IRI(f"{EX}on"))], []
                )
        # Leaving the context seals: reads see every replayed triple.
        assert len(store) == base + 4
        from repro.storage import DeltaOverlayIndexes

        indexes = store.indexes
        assert isinstance(indexes, DeltaOverlayIndexes)
        assert not indexes.delta.needs_seal
        store.close()


# ----------------------------------------------------------------------
# repro wal info: exit codes distinguish torn from corrupt
# ----------------------------------------------------------------------
class TestWalInfoCLI:
    def test_clean_log_exits_0(self, wal_path):
        with WriteAheadLog(wal_path, policy="always") as wal:
            wal.append(3, insert_stmt(0))
            wal.append(4, insert_stmt(1))
        out = io.StringIO()
        assert cli_main(["wal", "info", wal_path], out=out) == 0
        text = out.getvalue()
        assert "integrity" in text and "OK" in text
        assert "records       2" in text
        assert "generations   3..4" in text

    def test_torn_log_exits_2(self, wal_path, capsys):
        write_frames(wal_path, [(1, insert_stmt(0)), (2, insert_stmt(1))])
        data = open(wal_path, "rb").read()
        open(wal_path, "wb").write(data[:-5])
        out = io.StringIO()
        code = cli_main(["wal", "info", wal_path], out=out)
        assert code == 2
        assert "torn tail" in out.getvalue()
        assert "truncates the tail" in capsys.readouterr().err

    def test_corrupt_log_exits_3(self, wal_path, capsys):
        write_frames(wal_path, [(1, insert_stmt(0))])
        data = bytearray(open(wal_path, "rb").read())
        data[20] ^= 0xFF
        open(wal_path, "wb").write(bytes(data))
        code = cli_main(["wal", "info", wal_path], out=io.StringIO())
        assert code == 3
        err = capsys.readouterr().err
        assert "corrupt" in err

    def test_missing_log_exits_2(self, wal_path, capsys):
        code = cli_main(["wal", "info", wal_path], out=io.StringIO())
        assert code == 2
        assert "no such" in capsys.readouterr().err.lower()
