"""Unit and property tests for BE-tree validity checking (§4.2.1)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bgp import WCOJoinEngine
from repro.core import (
    BETree,
    BGPNode,
    CostModel,
    GroupNode,
    InvalidBETreeError,
    OptionalNode,
    UnionNode,
    multi_level_transform,
    validate_tree,
)
from repro.rdf import IRI, TriplePattern, Variable
from repro.sparql import parse_group
from repro.storage import TripleStore

from .strategies import datasets, select_queries

P = IRI("http://x/p")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestStructuralRules:
    def test_valid_tree_passes(self):
        tree = BETree.from_group(
            parse_group("{ ?x <http://x/p> ?y OPTIONAL { ?y <http://x/q> ?z } }")
        )
        validate_tree(tree)

    def test_root_must_be_group(self):
        tree = BETree.__new__(BETree)
        tree.root = BGPNode([TriplePattern(X, P, Y)])
        with pytest.raises(InvalidBETreeError):
            validate_tree(tree)

    def test_union_needs_two_branches(self):
        union = UnionNode([GroupNode(), GroupNode()])
        union.branches.pop()  # corrupt it after construction
        tree = BETree(GroupNode([union]))
        with pytest.raises(InvalidBETreeError):
            validate_tree(tree)

    def test_union_branches_must_be_groups(self):
        union = UnionNode([GroupNode(), GroupNode()])
        union.branches[0] = BGPNode([TriplePattern(X, P, Y)])
        tree = BETree(GroupNode([union]))
        with pytest.raises(InvalidBETreeError):
            validate_tree(tree)

    def test_invalid_child_type(self):
        tree = BETree(GroupNode([]))
        tree.root.children.append("not a node")
        with pytest.raises(InvalidBETreeError):
            validate_tree(tree)

    def test_disconnected_bgp_rejected(self):
        bgp = BGPNode([TriplePattern(X, P, Y), TriplePattern(Z, P, IRI("http://x/c"))])
        tree = BETree(GroupNode([bgp]))
        with pytest.raises(InvalidBETreeError) as excinfo:
            validate_tree(tree)
        assert "Definition 5" in str(excinfo.value)

    def test_connected_bgp_accepted(self):
        bgp = BGPNode([TriplePattern(X, P, Y), TriplePattern(Y, P, Z)])
        validate_tree(BETree(GroupNode([bgp])))

    def test_empty_bgp_accepted(self):
        validate_tree(BETree(GroupNode([BGPNode([])])))

    def test_error_carries_path(self):
        union = UnionNode([GroupNode(), GroupNode()])
        union.branches[1] = BGPNode([])
        tree = BETree(GroupNode([union]))
        with pytest.raises(InvalidBETreeError) as excinfo:
            validate_tree(tree)
        assert "branches[1]" in excinfo.value.path


class TestInvariantUnderTransformation:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(datasets(), select_queries())
    def test_construction_yields_valid_trees(self, dataset, query):
        validate_tree(BETree.from_query(query))

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(datasets(), select_queries())
    def test_transformation_preserves_validity(self, dataset, query):
        store = TripleStore.from_dataset(dataset)
        tree = BETree.from_query(query)
        multi_level_transform(CostModel(WCOJoinEngine(store)), tree)
        validate_tree(tree)
