"""Unit tests for the SPARQL-UO cost model (Equations 1–8)."""

import pytest

from repro.bgp import WCOJoinEngine
from repro.core import BETree, BGPNode, CostModel, f_and, f_optional, f_union
from repro.rdf import Dataset, IRI, Literal
from repro.sparql import parse_group
from repro.storage import TripleStore

EX = "http://x/"


@pytest.fixture(scope="module")
def cost_model():
    d = Dataset()
    p, q = IRI(EX + "p"), IRI(EX + "q")
    for i in range(20):
        s = IRI(EX + f"s{i}")
        d.add_spo(s, p, IRI(EX + f"o{i}"))
        if i < 5:
            d.add_spo(s, q, Literal(f"v{i}"))
    return CostModel(WCOJoinEngine(TripleStore.from_dataset(d)))


class TestCombinationFunctions:
    def test_f_and_is_product(self):
        assert f_and(2.0, 3.0, 4.0) == 24.0

    def test_f_union_is_sum(self):
        assert f_union([1.0, 2.0, 3.0]) == 6.0

    def test_f_optional_is_product(self):
        assert f_optional(5.0, 7.0) == 35.0


class TestResultSizes:
    def test_bgp_node_uses_engine_estimate(self, cost_model):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y }"))
        (bgp,) = tree.root.children
        assert cost_model.result_size(bgp) == 20.0

    def test_empty_bgp_is_identity(self, cost_model):
        assert cost_model.result_size(BGPNode([])) == 1.0
        assert cost_model.bgp_cost(BGPNode([])) == 0.0

    def test_group_multiplies_children(self, cost_model):
        tree = BETree.from_group(
            parse_group("{ ?x <http://x/p> ?y . ?a <http://x/q> ?b }")
        )
        # Two non-coalescable BGPs of sizes 20 and 5 → group = 100.
        assert cost_model.result_size(tree.root) == 100.0

    def test_union_adds_branches(self, cost_model):
        tree = BETree.from_group(
            parse_group("{ { ?x <http://x/p> ?y } UNION { ?x <http://x/q> ?y } }")
        )
        (union,) = tree.root.children
        assert cost_model.result_size(union) == 25.0

    def test_optional_multiplies(self, cost_model):
        tree = BETree.from_group(
            parse_group("{ ?x <http://x/p> ?y OPTIONAL { ?x <http://x/q> ?z } }")
        )
        # group = res(BGP) × res(OPTIONAL group) = 20 × 5.
        assert cost_model.result_size(tree.root) == 100.0

    def test_estimates_are_memoized(self, cost_model):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y }"))
        (bgp,) = tree.root.children
        first = cost_model.bgp_estimate(bgp)
        assert cost_model.bgp_estimate(bgp) is first


class TestLocalCosts:
    def test_local_cost_merge_positive(self, cost_model):
        tree = BETree.from_group(
            parse_group(
                "{ ?x <http://x/q> ?v { ?x <http://x/p> ?y } UNION { ?x <http://x/q> ?y } }"
            )
        )
        p1, union = tree.root.children
        cost = cost_model.local_cost_merge(tree.root, p1, union)
        assert cost > 0

    def test_local_cost_inject_positive(self, cost_model):
        tree = BETree.from_group(
            parse_group("{ ?x <http://x/q> ?v OPTIONAL { ?x <http://x/p> ?y } }")
        )
        p1, optional = tree.root.children
        cost = cost_model.local_cost_inject(tree.root, p1, optional)
        assert cost > 0

    def test_sibling_exclusion_of_transformed_operator(self, cost_model):
        """The transformed UNION must not appear in P1's fAND context —
        its cost is carried by the f_UNION term (see cost.py docstring)."""
        tree = BETree.from_group(
            parse_group(
                "{ ?x <http://x/q> ?v { ?x <http://x/p> ?y } UNION { ?x <http://x/q> ?y } }"
            )
        )
        p1, union = tree.root.children
        with_exclusion = cost_model._and_term(tree.root, p1, exclude=union)
        without = cost_model._and_term(tree.root, p1)
        assert with_exclusion < without
