"""Hypothesis strategies for random RDF data and SPARQL-UO queries.

The generated universe is deliberately tiny (few subjects, predicates,
values) so that random triple patterns frequently join, optionals
frequently half-match and unions overlap — the regimes where semantic
bugs in transformations or pruning would surface.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.rdf import Dataset, IRI, Literal, Triple, TriplePattern, Variable
from repro.sparql.algebra import (
    GroupGraphPattern,
    OptionalExpression,
    SelectQuery,
    UnionExpression,
)

EX = "http://x.test/"

_SUBJECTS = [IRI(EX + f"s{i}") for i in range(8)]
_PREDICATES = [IRI(EX + f"p{i}") for i in range(4)]
_OBJECTS = _SUBJECTS + [Literal(f"v{i}") for i in range(4)]
_VARIABLES = [Variable(f"v{i}") for i in range(6)]

subjects = st.sampled_from(_SUBJECTS)
predicates = st.sampled_from(_PREDICATES)
objects = st.sampled_from(_OBJECTS)
variables = st.sampled_from(_VARIABLES)


@st.composite
def triples(draw) -> Triple:
    return Triple(draw(subjects), draw(predicates), draw(objects))


@st.composite
def datasets(draw) -> Dataset:
    return Dataset(draw(st.lists(triples(), min_size=0, max_size=40)))


@st.composite
def triple_patterns(draw) -> TriplePattern:
    subject = draw(st.one_of(variables, subjects))
    predicate = draw(st.one_of(variables, predicates))
    obj = draw(st.one_of(variables, objects))
    return TriplePattern(subject, predicate, obj)


def group_patterns(max_depth: int = 3):
    """Recursive strategy for group graph patterns.

    Depth-limited; union branches and optional bodies are groups, so the
    full BGP/AND/UNION/OPTIONAL grammar is covered.
    """
    if max_depth <= 0:
        return st.builds(
            GroupGraphPattern,
            st.lists(triple_patterns(), min_size=1, max_size=3),
        )
    sub = group_patterns(max_depth - 1)
    element = st.one_of(
        triple_patterns(),
        st.builds(OptionalExpression, sub),
        st.builds(
            UnionExpression,
            st.lists(sub, min_size=2, max_size=3),
        ),
        sub,
    )
    return st.builds(
        GroupGraphPattern,
        st.lists(element, min_size=1, max_size=4),
    )


@st.composite
def select_queries(draw, max_depth: int = 3) -> SelectQuery:
    """SELECT * over a random group pattern."""
    return SelectQuery(None, draw(group_patterns(max_depth)))


@st.composite
def solution_mappings(draw, variables_pool: str = "abcd", max_value: int = 2) -> dict:
    """One partial solution mapping over a tiny variable/value universe.

    Every variable may be left unbound, which is exactly the regime the
    bag operators' loose-row fallbacks (shared-but-unbound variables
    after OPTIONAL/UNION) must handle.
    """
    out = {}
    for var in variables_pool:
        value = draw(st.none() | st.integers(min_value=0, max_value=max_value))
        if value is not None:
            out[var] = value
    return out


def solution_bags(variables_pool: str = "abcd", max_size: int = 6):
    """Bags of partial mappings with overlapping, sometimes-unbound vars."""
    return st.lists(
        solution_mappings(variables_pool=variables_pool),
        min_size=0,
        max_size=max_size,
    )


@st.composite
def optional_only_groups(draw, max_depth: int = 2) -> GroupGraphPattern:
    """Groups using only triples, nesting and OPTIONAL (LBR's class).

    LBR additionally assumes well-designed patterns, so every OPTIONAL
    body here is anchored: its first pattern reuses a variable from the
    required part when possible.
    """
    required = draw(st.lists(triple_patterns(), min_size=1, max_size=3))
    elements = list(required)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        if max_depth > 0:
            body = draw(optional_only_groups(max_depth=max_depth - 1))
        else:
            body = GroupGraphPattern(
                draw(st.lists(triple_patterns(), min_size=1, max_size=2))
            )
        elements.append(OptionalExpression(body))
    return GroupGraphPattern(elements)
