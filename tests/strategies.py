"""Hypothesis strategies for random RDF data and SPARQL-UO queries.

The generated universe is deliberately tiny (few subjects, predicates,
values) so that random triple patterns frequently join, optionals
frequently half-match and unions overlap — the regimes where semantic
bugs in transformations or pruning would surface.
"""

from __future__ import annotations

import random
from typing import List, Optional

from hypothesis import strategies as st

from repro.rdf import Dataset, IRI, Literal, Triple, TriplePattern, Variable
from repro.sparql.algebra import (
    Aggregate,
    FilterExpression,
    GroupGraphPattern,
    OptionalExpression,
    OrderCondition,
    SelectQuery,
    UnionExpression,
    pattern_variables,
)
from repro.sparql.expressions import (
    Arithmetic,
    BoundCall,
    Comparison,
    ConstantTerm,
    Expression,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    RegexCall,
    VariableRef,
)

EX = "http://x.test/"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"


def int_literal(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_INTEGER)


_SUBJECTS = [IRI(EX + f"s{i}") for i in range(8)]
_PREDICATES = [IRI(EX + f"p{i}") for i in range(4)]
_OBJECTS = _SUBJECTS + [Literal(f"v{i}") for i in range(4)] + [int_literal(i) for i in range(5)]
_VARIABLES = [Variable(f"v{i}") for i in range(6)]

subjects = st.sampled_from(_SUBJECTS)
predicates = st.sampled_from(_PREDICATES)
objects = st.sampled_from(_OBJECTS)
variables = st.sampled_from(_VARIABLES)


@st.composite
def triples(draw) -> Triple:
    return Triple(draw(subjects), draw(predicates), draw(objects))


@st.composite
def datasets(draw) -> Dataset:
    return Dataset(draw(st.lists(triples(), min_size=0, max_size=40)))


@st.composite
def triple_patterns(draw) -> TriplePattern:
    subject = draw(st.one_of(variables, subjects))
    predicate = draw(st.one_of(variables, predicates))
    obj = draw(st.one_of(variables, objects))
    return TriplePattern(subject, predicate, obj)


def group_patterns(max_depth: int = 3):
    """Recursive strategy for group graph patterns.

    Depth-limited; union branches and optional bodies are groups, so the
    full BGP/AND/UNION/OPTIONAL grammar is covered.
    """
    if max_depth <= 0:
        return st.builds(
            GroupGraphPattern,
            st.lists(triple_patterns(), min_size=1, max_size=3),
        )
    sub = group_patterns(max_depth - 1)
    element = st.one_of(
        triple_patterns(),
        st.builds(OptionalExpression, sub),
        st.builds(
            UnionExpression,
            st.lists(sub, min_size=2, max_size=3),
        ),
        sub,
    )
    return st.builds(
        GroupGraphPattern,
        st.lists(element, min_size=1, max_size=4),
    )


@st.composite
def select_queries(draw, max_depth: int = 3) -> SelectQuery:
    """SELECT * over a random group pattern."""
    return SelectQuery(None, draw(group_patterns(max_depth)))


@st.composite
def solution_mappings(draw, variables_pool: str = "abcd", max_value: int = 2) -> dict:
    """One partial solution mapping over a tiny variable/value universe.

    Every variable may be left unbound, which is exactly the regime the
    bag operators' loose-row fallbacks (shared-but-unbound variables
    after OPTIONAL/UNION) must handle.
    """
    out = {}
    for var in variables_pool:
        value = draw(st.none() | st.integers(min_value=0, max_value=max_value))
        if value is not None:
            out[var] = value
    return out


def solution_bags(variables_pool: str = "abcd", max_size: int = 6):
    """Bags of partial mappings with overlapping, sometimes-unbound vars."""
    return st.lists(
        solution_mappings(variables_pool=variables_pool),
        min_size=0,
        max_size=max_size,
    )


# ----------------------------------------------------------------------
# FILTER expressions and modifier stacks (hypothesis)
# ----------------------------------------------------------------------
_REGEX_PATTERNS = ["v", "v[012]", "^v", "x\\d", "s[0-3]$"]

_CONSTANTS = (
    [ConstantTerm(int_literal(i)) for i in range(5)]
    + [ConstantTerm(Literal(f"v{i}")) for i in range(3)]
    + [ConstantTerm(s) for s in _SUBJECTS[:3]]
)


@st.composite
def filter_expressions(draw, var_names: List[str], max_depth: int = 2) -> Expression:
    """Random FILTER expressions over (mostly) the given variables.

    Covers the whole supported expression fragment: comparisons,
    logical connectives, arithmetic, BOUND and REGEX.  Occasionally
    references a variable outside ``var_names`` so the unbound-error
    path is exercised too.
    """
    names = list(var_names) or ["v0"]
    names.append("never_bound")
    variable = st.sampled_from(names).map(VariableRef)
    constant = st.sampled_from(_CONSTANTS)

    def leaf():
        return st.one_of(
            st.builds(
                Comparison,
                st.sampled_from(sorted(Comparison.OPS)),
                variable,
                st.one_of(constant, variable),
            ),
            st.builds(
                Comparison,
                st.sampled_from(sorted(Comparison.OPS)),
                st.builds(
                    Arithmetic,
                    st.sampled_from(["+", "-", "*"]),
                    variable,
                    st.sampled_from(_CONSTANTS[:5]),
                ),
                st.sampled_from(_CONSTANTS[:5]),
            ),
            st.sampled_from(names).map(BoundCall),
            st.builds(
                RegexCall,
                variable,
                st.sampled_from(_REGEX_PATTERNS).map(lambda p: ConstantTerm(Literal(p))),
                st.one_of(st.none(), st.just(ConstantTerm(Literal("i")))),
            ),
        )

    if max_depth <= 0:
        return draw(leaf())
    sub = filter_expressions(var_names, max_depth=max_depth - 1)
    return draw(
        st.one_of(
            leaf(),
            st.builds(LogicalAnd, sub, sub),
            st.builds(LogicalOr, sub, sub),
            st.builds(LogicalNot, sub),
        )
    )


@st.composite
def groups_with_filters(draw, max_depth: int = 2) -> GroupGraphPattern:
    """A random group graph pattern with 0–2 FILTER elements appended."""
    group = draw(group_patterns(max_depth))
    bound = sorted(pattern_variables(group))
    elements = list(group.elements)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        expression = draw(filter_expressions(bound))
        position = draw(st.integers(min_value=0, max_value=len(elements)))
        elements.insert(position, FilterExpression(expression))
    return GroupGraphPattern(elements)


@st.composite
def modifier_queries(draw, max_depth: int = 2) -> SelectQuery:
    """A SELECT query with a random FILTER / modifier stack.

    ORDER BY keys are restricted to projected variables so result order
    is comparable across implementations (ties then carry identical
    keys and any key-respecting order is acceptable).
    """
    where = draw(groups_with_filters(max_depth))
    bound = sorted(pattern_variables(where))
    if bound and draw(st.booleans()):
        projection = [
            Variable(name)
            for name in draw(
                st.lists(st.sampled_from(bound), min_size=1, max_size=3, unique=True)
            )
        ]
    else:
        projection = None
    projected_names = bound if projection is None else [v.name for v in projection]
    order_by = []
    if projected_names and draw(st.booleans()):
        for name in draw(
            st.lists(st.sampled_from(projected_names), min_size=1, max_size=2, unique=True)
        ):
            order_by.append(OrderCondition(VariableRef(name), draw(st.booleans())))
    return SelectQuery(
        projection,
        where,
        distinct=draw(st.booleans()),
        order_by=order_by,
        limit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=8))),
        offset=draw(st.sampled_from([0, 0, 1, 3])),
    )


# ----------------------------------------------------------------------
# seeded random generation (plain ``random.Random``) for the
# differential suite, where deterministic replay across runs matters
# more than shrinking
# ----------------------------------------------------------------------
def random_dataset(rng: random.Random, size: int = 28) -> Dataset:
    return Dataset(
        Triple(
            rng.choice(_SUBJECTS),
            rng.choice(_PREDICATES),
            rng.choice(_OBJECTS),
        )
        for _ in range(size)
    )


def _random_pattern(rng: random.Random) -> TriplePattern:
    subject = rng.choice(_VARIABLES) if rng.random() < 0.65 else rng.choice(_SUBJECTS)
    predicate = rng.choice(_VARIABLES) if rng.random() < 0.2 else rng.choice(_PREDICATES)
    obj = rng.choice(_VARIABLES) if rng.random() < 0.6 else rng.choice(_OBJECTS)
    return TriplePattern(subject, predicate, obj)


def _random_group(rng: random.Random, depth: int) -> GroupGraphPattern:
    elements: list = [_random_pattern(rng)]
    for _ in range(rng.randint(0, 3)):
        roll = rng.random()
        if roll < 0.55 or depth <= 0:
            elements.append(_random_pattern(rng))
        elif roll < 0.75:
            elements.append(OptionalExpression(_random_group(rng, depth - 1)))
        elif roll < 0.9:
            elements.append(
                UnionExpression(
                    [_random_group(rng, depth - 1) for _ in range(rng.randint(2, 3))]
                )
            )
        else:
            elements.append(_random_group(rng, depth - 1))
    return GroupGraphPattern(elements)


def _random_expression(rng: random.Random, names: List[str], depth: int = 2) -> Expression:
    roll = rng.random()
    if depth > 0 and roll < 0.3:
        op = rng.random()
        left = _random_expression(rng, names, depth - 1)
        right = _random_expression(rng, names, depth - 1)
        if op < 0.4:
            return LogicalAnd(left, right)
        if op < 0.8:
            return LogicalOr(left, right)
        return LogicalNot(left)
    var = lambda: VariableRef(rng.choice(names))
    kind = rng.random()
    if kind < 0.35:
        return Comparison(
            rng.choice(sorted(Comparison.OPS)), var(), rng.choice(_CONSTANTS)
        )
    if kind < 0.5:
        return Comparison(rng.choice(sorted(Comparison.OPS)), var(), var())
    if kind < 0.65:
        return Comparison(
            rng.choice(sorted(Comparison.OPS)),
            Arithmetic(rng.choice(["+", "-", "*"]), var(), ConstantTerm(int_literal(rng.randint(0, 3)))),
            ConstantTerm(int_literal(rng.randint(0, 6))),
        )
    if kind < 0.8:
        return BoundCall(rng.choice(names))
    return RegexCall(
        var(),
        ConstantTerm(Literal(rng.choice(_REGEX_PATTERNS))),
        ConstantTerm(Literal("i")) if rng.random() < 0.3 else None,
    )


def random_query(
    rng: random.Random, extended: bool = True, max_depth: int = 2
) -> SelectQuery:
    """One random SELECT query; ``extended`` adds FILTERs + modifiers.

    With ``extended=False`` the query stays inside the paper's original
    BGP / UNION / OPTIONAL fragment, so the differential suite also
    revalidates the PR 1 pipeline under transformations and pruning.
    """
    where = _random_group(rng, max_depth)
    bound = sorted(pattern_variables(where))
    if not extended:
        return SelectQuery(None, where)
    names = bound or ["v0"]
    if rng.random() < 0.1:
        names = names + ["never_bound"]
    elements = list(where.elements)
    for _ in range(rng.randint(0, 2)):
        expression = _random_expression(rng, names)
        elements.insert(rng.randint(0, len(elements)), FilterExpression(expression))
    where = GroupGraphPattern(elements)
    projection: Optional[List[Variable]] = None
    if bound and rng.random() < 0.4:
        count = rng.randint(1, min(3, len(bound)))
        projection = [Variable(n) for n in rng.sample(bound, count)]
    projected_names = bound if projection is None else [v.name for v in projection]
    order_by = []
    if projected_names and rng.random() < 0.35:
        for name in rng.sample(projected_names, min(len(projected_names), rng.randint(1, 2))):
            order_by.append(OrderCondition(VariableRef(name), rng.random() < 0.6))
    limit = rng.randint(0, 8) if rng.random() < 0.4 else None
    offset = rng.choice([0, 0, 0, 1, 2, 4]) if rng.random() < 0.4 else 0
    return SelectQuery(
        projection,
        where,
        distinct=rng.random() < 0.3,
        reduced=rng.random() < 0.05,
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


_AGG_FUNCTIONS = ["COUNT", "COUNT", "SUM", "MIN", "MAX", "AVG"]


def random_aggregate_query(rng: random.Random, max_depth: int = 2) -> SelectQuery:
    """One random GROUP BY / aggregate query for the differential suite.

    Deliberately adversarial around the zero-decode path's edge cases:

    - group keys drawn from *all* pattern variables, so OPTIONAL-born
      variables (UNBOUND in some rows) frequently key groups, and a
      sometimes-included never-bound variable keys everything into one
      UNBOUND group;
    - aggregated columns include string literals and IRIs (SUM/AVG →
      unbound alias) and sometimes a never-bound variable (COUNT=0,
      MIN/MAX unbound);
    - a query with no matching rows and no GROUP BY exercises the
      implicit empty group (COUNT must be 0, not an empty result);
    - every function × DISTINCT, COUNT(*) and COUNT(DISTINCT *)
      included, plus optional FILTERs (kernel-eligible and not),
      ORDER BY over aliases, DISTINCT and paging.
    """
    where = _random_group(rng, max_depth)
    bound = sorted(pattern_variables(where))
    names = bound or ["v0"]
    if rng.random() < 0.15:
        names = names + ["never_bound"]
    elements = list(where.elements)
    for _ in range(rng.randint(0, 2) if rng.random() < 0.5 else 0):
        expression = _random_expression(rng, names)
        elements.insert(rng.randint(0, len(elements)), FilterExpression(expression))
    where = GroupGraphPattern(elements)

    key_count = rng.choice([0, 1, 1, 1, 2])
    keys: List[Variable] = []
    if key_count:
        pool = list(dict.fromkeys(names))
        keys = [Variable(n) for n in rng.sample(pool, min(key_count, len(pool)))]

    aggregates: List[Aggregate] = []
    for index in range(rng.randint(1, 2)):
        function = rng.choice(_AGG_FUNCTIONS)
        distinct = rng.random() < 0.3
        if function == "COUNT" and rng.random() < 0.4:
            column = None  # COUNT(*) / COUNT(DISTINCT *)
        else:
            column = Variable(rng.choice(names))
        aggregates.append(
            Aggregate(function, column, Variable(f"agg{index}"), distinct=distinct)
        )

    projection: List = keys + aggregates
    rng.shuffle(projection)
    projected_names = [item.name for item in projection]
    order_by = []
    if rng.random() < 0.4:
        for name in rng.sample(
            projected_names, min(len(projected_names), rng.randint(1, 2))
        ):
            order_by.append(OrderCondition(VariableRef(name), rng.random() < 0.6))
    limit = rng.randint(0, 6) if rng.random() < 0.3 else None
    offset = rng.choice([0, 0, 1, 2]) if rng.random() < 0.3 else 0
    return SelectQuery(
        projection,
        where,
        group_by=keys,
        distinct=rng.random() < 0.2,
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


@st.composite
def optional_only_groups(draw, max_depth: int = 2) -> GroupGraphPattern:
    """Groups using only triples, nesting and OPTIONAL (LBR's class).

    LBR additionally assumes well-designed patterns, so every OPTIONAL
    body here is anchored: its first pattern reuses a variable from the
    required part when possible.
    """
    required = draw(st.lists(triple_patterns(), min_size=1, max_size=3))
    elements = list(required)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        if max_depth > 0:
            body = draw(optional_only_groups(max_depth=max_depth - 1))
        else:
            body = GroupGraphPattern(
                draw(st.lists(triple_patterns(), min_size=1, max_size=2))
            )
        elements.append(OptionalExpression(body))
    return GroupGraphPattern(elements)
