"""Test package marker.

Several test modules import shared Hypothesis strategies with a
relative ``from .strategies import …``; this file makes ``tests`` a
package so pytest imports them as ``tests.<module>`` and the relative
imports resolve.
"""
