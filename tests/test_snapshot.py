"""Snapshot persistence: round-trips, laziness, corruption handling."""

import os

import pytest

from repro.core import SparqlUOEngine
from repro.rdf import BlankNode, Dataset, IRI, Literal, Triple
from repro.storage import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    SnapshotReader,
    TripleStore,
)
from repro.storage.indexes import FrozenTripleIndexes, TripleIndexes
from repro.storage.snapshot import decode_term_record, encode_term_record

EX = "http://example.org/"


def tricky_dataset() -> Dataset:
    """Every term kind and literal shape the format must preserve."""
    d = Dataset()
    p = IRI(EX + "p")
    d.add_spo(IRI(EX + "s1"), p, IRI(EX + "o1"))
    d.add_spo(IRI(EX + "s1"), IRI(EX + "q"), Literal("plain"))
    d.add_spo(IRI(EX + "s2"), p, Literal("hallo", language="de"))
    d.add_spo(IRI(EX + "s2"), p, Literal("HALLO", language="EN"))
    d.add_spo(
        IRI(EX + "s3"), p,
        Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"),
    )
    d.add_spo(BlankNode("b0"), p, Literal('esc "quotes"\nand\ttabs\\'))
    d.add_spo(IRI(EX + "s3"), p, Literal("ünïcödé ✓"))
    d.add_spo(BlankNode("b1"), IRI(EX + "q"), BlankNode("b0"))
    return d


def rows_of(result):
    return sorted(
        tuple(sorted((var, term.n3()) for var, term in row.items())) for row in result
    )


@pytest.fixture
def snap_path(tmp_path):
    return str(tmp_path / "store.snap")


class TestTermRecords:
    @pytest.mark.parametrize(
        "term",
        [
            IRI(EX + "x"),
            BlankNode("b42"),
            Literal("plain"),
            Literal("tagged", language="en-GB"),
            Literal("7", datatype="http://www.w3.org/2001/XMLSchema#int"),
            Literal(""),
            Literal("", language="fr"),
            Literal("snow ☃"),
        ],
    )
    def test_roundtrip(self, term):
        assert decode_term_record(encode_term_record(term)) == term

    def test_encoding_is_injective_across_shapes(self):
        terms = [
            IRI("x"),
            BlankNode("x"),
            Literal("x"),
            Literal("x", language="en"),
            Literal("x", datatype=EX + "dt"),
        ]
        records = {encode_term_record(t) for t in terms}
        assert len(records) == len(terms)

    def test_garbage_record_raises(self):
        with pytest.raises(SnapshotError):
            decode_term_record(b"")
        with pytest.raises(SnapshotError):
            decode_term_record(b"\xffjunk")
        with pytest.raises(SnapshotError):
            decode_term_record(bytes([3, 255, 255, 255, 255]) + b"x")


class TestRoundTrip:
    def test_queries_identical_on_both_engines(self, snap_path):
        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        loaded = TripleStore.load(snap_path)
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        for engine_name in ("wco", "hashjoin"):
            fresh = SparqlUOEngine(store, bgp_engine=engine_name).execute(query)
            hot = SparqlUOEngine(loaded, bgp_engine=engine_name).execute(query)
            assert rows_of(fresh) == rows_of(hot)
            assert len(fresh) > 0

    @pytest.mark.parametrize("lazy", [True, False])
    def test_contents_identical(self, snap_path, lazy):
        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        loaded = TripleStore.load(snap_path, lazy=lazy)
        assert len(loaded) == len(store)
        assert len(loaded.dictionary) == len(store.dictionary)
        original = {store.dictionary.decode_triple(t) for t in store.indexes.all_triples()}
        restored = {loaded.dictionary.decode_triple(t) for t in loaded.indexes.all_triples()}
        assert original == restored

    def test_generation_preserved(self, snap_path):
        store = TripleStore.from_dataset(tricky_dataset())
        generation = store.generation
        assert generation > 0
        store.save(snap_path)
        assert TripleStore.load(snap_path).generation == generation
        assert TripleStore.load(snap_path, lazy=False).generation == generation

    def test_statistics_preserved_without_index_build(self, snap_path):
        store = TripleStore.from_dataset(tricky_dataset())
        expected = store.statistics
        store.save(snap_path)
        loaded = TripleStore.load(snap_path)
        stats = loaded.statistics
        assert loaded._indexes is None  # stats came from the STAT section
        assert stats.total_triples == expected.total_triples
        assert sorted(stats.predicates()) == sorted(expected.predicates())
        for p in expected.predicates():
            assert stats.for_predicate(p).triples == expected.for_predicate(p).triples

    def test_lazy_lookup_without_materialization(self, snap_path):
        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        loaded = TripleStore.load(snap_path)
        present = loaded.lookup(IRI(EX + "p"))
        assert present == store.lookup(IRI(EX + "p"))
        assert loaded.lookup(IRI(EX + "never-seen")) is None
        assert not loaded.dictionary._materialized  # binary search only

    def test_mutation_after_load_overlays_and_bumps_generation(self, snap_path):
        from repro.storage import DeltaOverlayIndexes

        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        loaded = TripleStore.load(snap_path)
        generation = loaded.generation
        assert isinstance(loaded.indexes, FrozenTripleIndexes)
        added = loaded.add(Triple(IRI(EX + "new"), IRI(EX + "p"), Literal("v")))
        assert added
        # Writes no longer thaw: they land in a sorted delta overlay
        # stacked over the still-frozen permutations.
        assert isinstance(loaded.indexes, DeltaOverlayIndexes)
        assert loaded.generation == generation + 1
        assert len(loaded) == len(store) + 1
        # duplicate insert still detected through the overlay
        assert not loaded.add(Triple(IRI(EX + "new"), IRI(EX + "p"), Literal("v")))
        # and a zero-effect write must not bump the generation again
        assert loaded.generation == generation + 1

    def test_save_reload_of_loaded_store(self, snap_path, tmp_path):
        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        second_path = str(tmp_path / "second.snap")
        TripleStore.load(snap_path).save(second_path)
        original = {store.dictionary.decode_triple(t) for t in store.indexes.all_triples()}
        reloaded = TripleStore.load(second_path, lazy=False)
        restored = {
            reloaded.dictionary.decode_triple(t) for t in reloaded.indexes.all_triples()
        }
        assert original == restored

    def test_empty_store_roundtrip(self, snap_path):
        TripleStore().save(snap_path)
        loaded = TripleStore.load(snap_path)
        assert len(loaded) == 0
        assert loaded.lookup(IRI(EX + "x")) is None
        assert list(loaded.indexes.scan()) == []


class TestPlanCache:
    QUERY = f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . OPTIONAL {{ ?s <{EX}q> ?v }} }}"

    def test_plan_cache_hit_after_snapshot_reload(self, snap_path):
        engine = SparqlUOEngine(TripleStore.from_dataset(tricky_dataset()), mode="full")
        before = rows_of(engine.execute(self.QUERY))
        engine.store.save(snap_path)
        engine.reload_store(TripleStore.load(snap_path))
        _, _, _, parse_seconds, transform_seconds = engine.prepare(self.QUERY)
        assert parse_seconds == 0.0 and transform_seconds == 0.0  # cache hit
        assert rows_of(engine.execute(self.QUERY)) == before

    def test_plan_cache_misses_when_generation_differs(self, snap_path):
        engine = SparqlUOEngine(TripleStore.from_dataset(tricky_dataset()), mode="full")
        engine.execute(self.QUERY)
        engine.store.save(snap_path)
        loaded = TripleStore.load(snap_path)
        loaded.add(Triple(IRI(EX + "other"), IRI(EX + "p"), Literal("x")))
        engine.reload_store(loaded)
        _, _, _, parse_seconds, _ = engine.prepare(self.QUERY)
        assert parse_seconds > 0.0  # write bumped the generation: replanned

    def test_plan_cache_misses_for_unrelated_store_with_same_generation(self):
        store_a = TripleStore.from_dataset(tricky_dataset())
        store_b = TripleStore()
        store_b.add_all(
            Triple(IRI(EX + f"u{i}"), IRI(EX + "p"), Literal(str(i))) for i in range(5)
        )
        assert store_a.generation == store_b.generation == 1
        engine = SparqlUOEngine(store_a, mode="full")
        engine.execute(self.QUERY)
        engine.reload_store(store_b)  # same generation, different data
        _, _, _, parse_seconds, _ = engine.prepare(self.QUERY)
        assert parse_seconds > 0.0  # content counts differ: replanned

    def test_from_snapshot_constructor(self, snap_path):
        store = TripleStore.from_dataset(tricky_dataset())
        store.save(snap_path)
        engine = SparqlUOEngine.from_snapshot(snap_path, bgp_engine="hashjoin")
        reference = SparqlUOEngine(store, bgp_engine="hashjoin")
        assert rows_of(engine.execute(self.QUERY)) == rows_of(
            reference.execute(self.QUERY)
        )


class TestCachedStore:
    def test_cache_miss_builds_then_hit_loads(self, tmp_path):
        from repro.datasets import cached_store, snapshot_path

        cold = cached_store("lubm", tmp_path, universities=1)
        cache_file = snapshot_path("lubm", tmp_path, universities=1)
        assert cache_file.exists()
        hot = cached_store("lubm", tmp_path, universities=1)
        assert len(hot) == len(cold)
        assert hot.generation == cold.generation

    def test_corrupt_cache_entry_rebuilt(self, tmp_path):
        from repro.datasets import cached_store, snapshot_path

        cached_store("lubm", tmp_path, universities=1)
        cache_file = snapshot_path("lubm", tmp_path, universities=1)
        cache_file.write_bytes(b"REPROSNPgarbage")
        rebuilt = cached_store("lubm", tmp_path, universities=1)
        assert len(rebuilt) > 0
        # the rebuild repaired the cache in place
        assert TripleStore.load(str(cache_file)).generation == rebuilt.generation

    def test_no_directory_means_no_cache(self, tmp_path, monkeypatch):
        from repro.datasets import SNAPSHOT_DIR_ENV, cached_store

        monkeypatch.delenv(SNAPSHOT_DIR_ENV, raising=False)
        store = cached_store("dbpedia", None, articles=200)
        assert len(store) > 0
        assert not list(tmp_path.iterdir())

    def test_env_var_directory(self, tmp_path, monkeypatch):
        from repro.datasets import SNAPSHOT_DIR_ENV, cached_store

        monkeypatch.setenv(SNAPSHOT_DIR_ENV, str(tmp_path))
        cached_store("dbpedia", articles=200)
        assert any(path.suffix == ".snap" for path in tmp_path.iterdir())

    def test_unknown_flavor(self, tmp_path):
        from repro.datasets import cached_store

        with pytest.raises(ValueError, match="flavor"):
            cached_store("freebase", tmp_path)


class TestCorruption:
    def saved(self, path) -> str:
        TripleStore.from_dataset(tricky_dataset()).save(path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            TripleStore.load(str(tmp_path / "nope.snap"))

    def test_bad_magic(self, snap_path):
        self.saved(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.write(b"NOTASNAP")
        with pytest.raises(SnapshotError, match="bad magic"):
            TripleStore.load(snap_path)

    def test_not_even_a_header(self, snap_path):
        with open(snap_path, "wb") as handle:
            handle.write(b"xy")
        with pytest.raises(SnapshotError, match="too short"):
            TripleStore.load(snap_path)

    def test_version_mismatch(self, snap_path):
        self.saved(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.seek(len(MAGIC))
            handle.write((FORMAT_VERSION + 1).to_bytes(2, "little"))
        with pytest.raises(SnapshotError, match="version"):
            TripleStore.load(snap_path)

    def test_truncated_file(self, snap_path):
        self.saved(snap_path)
        size = os.path.getsize(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(SnapshotError):
            TripleStore.load(snap_path, lazy=False)

    def test_corrupt_section_payload(self, snap_path):
        self.saved(snap_path)
        size = os.path.getsize(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.seek(size - 9)  # inside the last section's payload
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(SnapshotError, match="checksum"):
            with SnapshotReader(snap_path) as reader:
                reader.verify()

    def test_corrupt_table_detected_eagerly(self, snap_path):
        self.saved(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.seek(len(MAGIC) + 2 + 2 + 4 + 4 + 5)  # inside the table
            handle.write(b"\xff\xff")
        with pytest.raises(SnapshotError):
            TripleStore.load(snap_path)

    def test_reader_info_and_verify_on_good_file(self, snap_path):
        self.saved(snap_path)
        with SnapshotReader(snap_path) as reader:
            reader.verify()
            info = reader.info()
            assert info["format_version"] == FORMAT_VERSION
            assert info["triples"] == len(tricky_dataset())
            names = {name for name, _, _ in info["sections"]}
            assert {"META", "DICT", "DOFF", "TSRT", "COLS", "STAT"} <= names
