"""The crown-jewel property: every execution strategy agrees with the
reference semantics (Definition 7) on *arbitrary* random SPARQL-UO
queries over arbitrary random datasets.

This exercises, in combination: BE-tree construction (with its
crossing-safety guard), merge/inject transformations (Theorems 1–2 plus
the relocation side-conditions), the cost-driven transformer, candidate
pruning with both thresholds, and both BGP engines.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import BETree, SparqlUOEngine
from repro.core.transform import multi_level_transform
from repro.core.cost import CostModel
from repro.bgp import HashJoinEngine, WCOJoinEngine
from repro.sparql import SelectQuery, execute_query
from repro.storage import TripleStore

from .strategies import datasets, select_queries

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def reference(query, dataset):
    return execute_query(query, dataset)


class TestModeEquivalence:
    @settings(max_examples=80, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_base_and_full_match_reference_wco(self, dataset, query):
        store = TripleStore.from_dataset(dataset)
        expected = reference(query, dataset)
        for mode in ("base", "full"):
            engine = SparqlUOEngine(store, bgp_engine="wco", mode=mode)
            assert engine.execute(query).solutions == expected, mode

    @settings(max_examples=40, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_base_and_full_match_reference_hashjoin(self, dataset, query):
        store = TripleStore.from_dataset(dataset)
        expected = reference(query, dataset)
        for mode in ("base", "full"):
            engine = SparqlUOEngine(store, bgp_engine="hashjoin", mode=mode)
            assert engine.execute(query).solutions == expected, mode

    @settings(max_examples=40, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_tt_and_cp_match_reference(self, dataset, query):
        store = TripleStore.from_dataset(dataset)
        expected = reference(query, dataset)
        for mode in ("tt", "cp"):
            engine = SparqlUOEngine(store, bgp_engine="wco", mode=mode)
            assert engine.execute(query).solutions == expected, mode


class TestTreeLevelProperties:
    @settings(max_examples=60, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_betree_construction_preserves_semantics(self, dataset, query):
        """BE-tree → syntax round trip evaluates identically (the
        coalescing guard at work)."""
        tree = BETree.from_query(query)
        rebuilt = SelectQuery(None, tree.to_group())
        assert reference(rebuilt, dataset) == reference(query, dataset)

    @settings(max_examples=60, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_transformed_tree_preserves_semantics(self, dataset, query):
        """Cost-driven transformation never changes results, whatever
        mixture of merges and injects it decides on."""
        store = TripleStore.from_dataset(dataset)
        tree = BETree.from_query(query)
        multi_level_transform(CostModel(WCOJoinEngine(store)), tree)
        rebuilt = SelectQuery(None, tree.to_group())
        assert reference(rebuilt, dataset) == reference(query, dataset)


class TestEngineAgreement:
    @settings(max_examples=40, **COMMON_SETTINGS)
    @given(datasets(), select_queries())
    def test_wco_and_hashjoin_agree_in_full_mode(self, dataset, query):
        store = TripleStore.from_dataset(dataset)
        wco = SparqlUOEngine(store, bgp_engine="wco", mode="full")
        hashjoin = SparqlUOEngine(store, bgp_engine="hashjoin", mode="full")
        assert wco.execute(query).solutions == hashjoin.execute(query).solutions
