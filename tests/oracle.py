"""Differential-testing oracle: naive bottom-up SPARQL-UO evaluation.

This module deliberately re-implements query evaluation in the most
straightforward way imaginable — decoded term rows as plain dicts,
nested-loop joins, per-element recursion over the syntax AST — sharing
*no* machinery with the optimized stack (no columnar bags, no BE-trees,
no encoding, no pushdown).  The only shared code is the expression
semantics of :mod:`repro.sparql.expressions`, which *defines* FILTER /
ORDER BY behaviour for every component.

``tests/test_differential.py`` runs hundreds of random queries through
both BGP engines (transformations and candidate pruning enabled) and
asserts exact bag equality against this oracle.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.rdf import Dataset
from repro.rdf.terms import Variable
from repro.sparql.algebra import (
    FilterExpression,
    GroupGraphPattern,
    OptionalExpression,
    SelectQuery,
    UnionExpression,
    pattern_variables,
)
from repro.rdf.triple import TriplePattern
from repro.sparql.aggregates import aggregate_terms, count_literal
from repro.sparql.expressions import filter_passes, order_key_for_binding

Solution = Dict[str, object]  # variable name → ground term

#: Circuit breaker for randomly generated cartesian blowups: the
#: differential suite skips (deterministically) the rare seed whose
#: naive evaluation would materialize more than this many rows.
MAX_ROWS = 50_000


class OracleBlowup(Exception):
    """Naive evaluation exceeded :data:`MAX_ROWS` intermediate rows."""


# ----------------------------------------------------------------------
# naive operators over dict solutions
# ----------------------------------------------------------------------
def _compatible(mu1: Solution, mu2: Solution) -> bool:
    for var, value in mu1.items():
        if var in mu2 and mu2[var] != value:
            return False
    return True


def _merge(mu1: Solution, mu2: Solution) -> Solution:
    merged = dict(mu1)
    merged.update(mu2)
    return merged


def _join(left: List[Solution], right: List[Solution]) -> List[Solution]:
    return [
        _merge(mu1, mu2) for mu1 in left for mu2 in right if _compatible(mu1, mu2)
    ]


def _left_join(left: List[Solution], right: List[Solution]) -> List[Solution]:
    out: List[Solution] = []
    for mu1 in left:
        matches = [_merge(mu1, mu2) for mu2 in right if _compatible(mu1, mu2)]
        if matches:
            out.extend(matches)
        else:
            out.append(mu1)
    return out


def _match_triple_pattern(pattern: TriplePattern, dataset: Dataset) -> List[Solution]:
    out: List[Solution] = []
    pattern_terms = pattern.as_tuple()
    for triple in dataset:
        binding: Solution = {}
        ok = True
        for pattern_term, data_term in zip(pattern_terms, triple.as_tuple()):
            if isinstance(pattern_term, Variable):
                bound = binding.get(pattern_term.name)
                if bound is None:
                    binding[pattern_term.name] = data_term
                elif bound != data_term:
                    ok = False
                    break
            elif pattern_term != data_term:
                ok = False
                break
        if ok:
            out.append(binding)
    return out


def evaluate_group(group: GroupGraphPattern, dataset: Dataset) -> List[Solution]:
    """Bottom-up evaluation of one group; FILTERs applied at group end
    (their SPARQL scope is the whole group)."""
    solutions: List[Solution] = [{}]
    for element in group.elements:
        if isinstance(element, FilterExpression):
            continue
        if isinstance(element, TriplePattern):
            solutions = _join(solutions, _match_triple_pattern(element, dataset))
        elif isinstance(element, GroupGraphPattern):
            solutions = _join(solutions, evaluate_group(element, dataset))
        elif isinstance(element, UnionExpression):
            union_rows: List[Solution] = []
            for branch in element.branches:
                union_rows.extend(evaluate_group(branch, dataset))
            solutions = _join(solutions, union_rows)
        elif isinstance(element, OptionalExpression):
            solutions = _left_join(solutions, evaluate_group(element.pattern, dataset))
        else:  # pragma: no cover - AST constructor validates
            raise TypeError(f"invalid group element {element!r}")
        if len(solutions) > MAX_ROWS:
            raise OracleBlowup(f"{len(solutions)} intermediate rows")
    for filter_element in group.filters():
        solutions = [
            mu for mu in solutions if filter_passes(filter_element.expression, mu)
        ]
    return solutions


# ----------------------------------------------------------------------
# full query pipeline
# ----------------------------------------------------------------------
class OracleResult(NamedTuple):
    variables: List[str]
    rows: List[Solution]  # final result, in order (post OFFSET/LIMIT)
    full: List[Solution]  # pre-slice result (ordered/projected/deduped)


def solution_key(mu: Solution) -> frozenset:
    """Hashable identity of one solution (terms are hashable)."""
    return frozenset(mu.items())


def grouped_solutions(
    query: SelectQuery, solutions: List[Solution]
) -> List[Solution]:
    """Naive dict-based GROUP BY + aggregation (term-level throughout).

    Groups key on the tuple of (possibly absent) group-variable values;
    aggregates fold over the *bound* values of their column through the
    same shared :func:`aggregate_terms` semantics the engine uses —
    deliberately without any encoded-id shortcuts, so the differential
    suite cross-checks the zero-decode path against first principles.
    An aggregate that folds to None (MIN/MAX of nothing, SUM over a
    non-number) leaves its alias unbound.  With no GROUP BY keys there
    is exactly one implicit group, even over an empty input.
    """
    group_names = [v.name for v in query.group_by]
    groups: Dict[tuple, List[Solution]] = {}
    if group_names:
        for mu in solutions:
            key = tuple(mu.get(name) for name in group_names)
            groups.setdefault(key, []).append(mu)
    else:
        groups[()] = list(solutions)
    out: List[Solution] = []
    for key, members in groups.items():
        result: Solution = {}
        for name, value in zip(group_names, key):
            if value is not None:
                result[name] = value
        for aggregate in query.aggregates:
            if aggregate.expression is None:  # COUNT(*) / COUNT(DISTINCT *)
                if aggregate.distinct:
                    count = len({solution_key(mu) for mu in members})
                else:
                    count = len(members)
                term = count_literal(count)
            else:
                name = aggregate.expression.name
                values = [mu[name] for mu in members if name in mu]
                term = aggregate_terms(
                    aggregate.function, values, distinct=aggregate.distinct
                )
            if term is not None:
                result[aggregate.name] = term
        out.append(result)
    return out


def execute(query: SelectQuery, dataset: Dataset) -> OracleResult:
    """GROUP BY/aggregate → ORDER BY → projection → DISTINCT/REDUCED →
    OFFSET → LIMIT."""
    solutions = evaluate_group(query.where, dataset)
    if query.groups:
        solutions = grouped_solutions(query, solutions)
    names: Optional[Sequence[str]] = query.projection_names()
    if names is None:
        names = sorted(pattern_variables(query.where))
    for condition in reversed(query.order_by):
        solutions.sort(
            key=lambda mu, e=condition.expression: order_key_for_binding(e, mu),
            reverse=not condition.ascending,
        )
    projected = [{v: mu[v] for v in names if v in mu} for mu in solutions]
    if query.deduplicates:
        seen = set()
        deduped = []
        for mu in projected:
            key = solution_key(mu)
            if key not in seen:
                seen.add(key)
                deduped.append(mu)
        projected = deduped
    sliced = projected[query.offset :]
    if query.limit is not None:
        sliced = sliced[: query.limit]
    return OracleResult(list(names), sliced, projected)


def as_counter(rows: List[Solution]) -> Counter:
    return Counter(solution_key(mu) for mu in rows)


def contained_in(rows: List[Solution], superset: List[Solution]) -> bool:
    """Multiset containment: rows ⊆ superset."""
    super_counts = as_counter(superset)
    for key, count in as_counter(rows).items():
        if count > super_counts.get(key, 0):
            return False
    return True
