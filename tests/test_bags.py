"""Unit and property tests for bags of mappings and their operators.

The property tests check the implementations against the paper's literal
set-builder definitions (Section 3), brute-forced.
"""

from hypothesis import given, strategies as st

from repro.sparql.bags import (
    UNBOUND,
    Bag,
    compatible,
    join,
    join_streamed,
    left_join,
    merge_mappings,
    minus,
    union,
)

from .strategies import solution_bags

# Small mapping universe: variables a/b/c over values 0..2, possibly absent.
_values = st.none() | st.integers(min_value=0, max_value=2)


@st.composite
def mappings(draw):
    out = {}
    for var in "abc":
        value = draw(_values)
        if value is not None:
            out[var] = value
    return out


bags = st.lists(mappings(), min_size=0, max_size=6).map(Bag)


def brute_join(b1, b2):
    return Bag(
        merge_mappings(m1, m2) for m1 in b1 for m2 in b2 if compatible(m1, m2)
    )


def brute_minus(b1, b2):
    return Bag(m1 for m1 in b1 if all(not compatible(m1, m2) for m2 in b2))


class TestCompatible:
    def test_disjoint_domains_compatible(self):
        assert compatible({"a": 1}, {"b": 2})

    def test_same_value_compatible(self):
        assert compatible({"a": 1, "b": 2}, {"a": 1})

    def test_conflict_incompatible(self):
        assert not compatible({"a": 1}, {"a": 2})

    def test_empty_compatible_with_everything(self):
        assert compatible({}, {"a": 1})

    @given(mappings(), mappings())
    def test_symmetry(self, m1, m2):
        assert compatible(m1, m2) == compatible(m2, m1)


class TestBagBasics:
    def test_identity_has_one_empty_mapping(self):
        bag = Bag.identity()
        assert len(bag) == 1 and list(bag) == [{}]

    def test_empty(self):
        assert len(Bag.empty()) == 0 and not Bag.empty()

    def test_equality_is_multiset(self):
        assert Bag([{"a": 1}, {"a": 1}]) == Bag([{"a": 1}, {"a": 1}])
        assert Bag([{"a": 1}, {"a": 1}]) != Bag([{"a": 1}])
        assert Bag([{"a": 1}, {"b": 2}]) == Bag([{"b": 2}, {"a": 1}])

    def test_unhashable(self):
        import pytest

        with pytest.raises(TypeError):
            hash(Bag())

    def test_variables(self):
        assert Bag([{"a": 1}, {"b": 2}]).variables() == {"a", "b"}

    def test_certain_variables(self):
        bag = Bag([{"a": 1, "b": 2}, {"a": 3}])
        assert bag.certain_variables() == {"a"}

    def test_certain_variables_empty_bag(self):
        assert Bag().certain_variables() == frozenset()

    def test_project(self):
        bag = Bag([{"a": 1, "b": 2}])
        assert list(bag.project(["a"])) == [{"a": 1}]

    def test_project_skips_unbound(self):
        bag = Bag([{"a": 1}])
        assert list(bag.project(["a", "z"])) == [{"a": 1}]

    def test_distinct_values(self):
        bag = Bag([{"a": 1}, {"a": 1}, {"a": 2}, {"b": 9}])
        assert bag.distinct_values("a") == {1, 2}


class TestJoin:
    def test_join_on_shared_variable(self):
        out = join(Bag([{"a": 1}]), Bag([{"a": 1, "b": 2}, {"a": 9}]))
        assert out == Bag([{"a": 1, "b": 2}])

    def test_cartesian_when_disjoint(self):
        out = join(Bag([{"a": 1}, {"a": 2}]), Bag([{"b": 1}]))
        assert len(out) == 2

    def test_identity_is_neutral(self):
        bag = Bag([{"a": 1}, {"a": 2, "b": 1}])
        assert join(Bag.identity(), bag) == bag
        assert join(bag, Bag.identity()) == bag

    def test_preserves_duplicates(self):
        out = join(Bag([{"a": 1}, {"a": 1}]), Bag([{"a": 1}]))
        assert len(out) == 2

    def test_unbound_shared_variable_joins_loosely(self):
        # {b:5} leaves 'a' unbound → compatible with both rows.
        out = join(Bag([{"a": 1}, {"a": 2}]), Bag([{"b": 5}, {"a": 1, "b": 6}]))
        assert out == Bag(
            [{"a": 1, "b": 5}, {"a": 2, "b": 5}, {"a": 1, "b": 6}]
        )

    @given(bags, bags)
    def test_matches_brute_force(self, b1, b2):
        assert join(b1, b2) == brute_join(b1, b2)

    @given(bags, bags)
    def test_commutative(self, b1, b2):
        assert join(b1, b2) == join(b2, b1)


class TestUnion:
    def test_concatenates(self):
        out = union(Bag([{"a": 1}]), Bag([{"a": 1}, {"b": 2}]))
        assert len(out) == 3

    @given(bags, bags)
    def test_size_adds(self, b1, b2):
        assert len(union(b1, b2)) == len(b1) + len(b2)


class TestMinus:
    def test_incompatible_survive(self):
        out = minus(Bag([{"a": 1}, {"a": 2}]), Bag([{"a": 1}]))
        assert out == Bag([{"a": 2}])

    def test_empty_right_keeps_all(self):
        bag = Bag([{"a": 1}])
        assert minus(bag, Bag()) == bag

    def test_disjoint_domains_remove_all(self):
        # Every mapping is compatible with {b:1}, so nothing survives.
        out = minus(Bag([{"a": 1}]), Bag([{"b": 1}]))
        assert len(out) == 0

    @given(bags, bags)
    def test_matches_brute_force(self, b1, b2):
        assert minus(b1, b2) == brute_minus(b1, b2)


class TestLeftJoin:
    def test_matching_rows_extended(self):
        out = left_join(Bag([{"a": 1}]), Bag([{"a": 1, "b": 2}]))
        assert out == Bag([{"a": 1, "b": 2}])

    def test_non_matching_rows_survive(self):
        out = left_join(Bag([{"a": 1}, {"a": 2}]), Bag([{"a": 1, "b": 2}]))
        assert out == Bag([{"a": 1, "b": 2}, {"a": 2}])

    def test_empty_right_is_identity(self):
        bag = Bag([{"a": 1}])
        assert left_join(bag, Bag()) == bag

    def test_identity_left(self):
        right = Bag([{"a": 1}, {"a": 2}])
        assert left_join(Bag.identity(), right) == right

    @given(bags, bags)
    def test_equals_definition(self, b1, b2):
        """Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪bag (Ω1 ∖ Ω2) — Definition 7."""
        expected = union(brute_join(b1, b2), brute_minus(b1, b2))
        assert left_join(b1, b2) == expected

    @given(bags)
    def test_result_at_least_left_size(self, b1):
        right = Bag([{"c": 0}])
        assert len(left_join(b1, right)) >= len(b1)


# ----------------------------------------------------------------------
# Columnar representation: equivalence with the old dict semantics.
#
# The strategies draw from `tests.strategies.solution_bags`, whose
# mappings share variables but may leave any of them unbound — the
# regime that exercises the loose-row fallback paths in join/left_join
# (a row whose hash key contains UNBOUND must fall back to pairwise
# compatibility checks, exactly as the per-row dicts did).
# ----------------------------------------------------------------------
wide_bags = solution_bags()


def brute_union(m1, m2):
    return list(m1) + list(m2)


def brute_left_join(m1, m2):
    joined = [
        merge_mappings(a, b) for a in m1 for b in m2 if compatible(a, b)
    ]
    kept = [a for a in m1 if all(not compatible(a, b) for b in m2)]
    return joined + kept


class TestColumnarEquivalence:
    """All four operators agree with the dict-level set-builder forms."""

    @given(wide_bags, wide_bags)
    def test_join_matches_dict_semantics(self, m1, m2):
        expected = Bag(
            merge_mappings(a, b) for a in m1 for b in m2 if compatible(a, b)
        )
        assert join(Bag(m1), Bag(m2)) == expected

    @given(wide_bags, wide_bags)
    def test_union_matches_dict_semantics(self, m1, m2):
        assert union(Bag(m1), Bag(m2)) == Bag(brute_union(m1, m2))

    @given(wide_bags, wide_bags)
    def test_minus_matches_dict_semantics(self, m1, m2):
        expected = Bag(
            a for a in m1 if all(not compatible(a, b) for b in m2)
        )
        assert minus(Bag(m1), Bag(m2)) == expected

    @given(wide_bags, wide_bags)
    def test_left_join_matches_dict_semantics(self, m1, m2):
        assert left_join(Bag(m1), Bag(m2)) == Bag(brute_left_join(m1, m2))

    @given(wide_bags, wide_bags)
    def test_join_streamed_equals_join(self, m1, m2):
        b1, b2 = Bag(m1), Bag(m2)
        streamed = join_streamed(b1, b2.schema, iter(b2.rows))
        assert streamed == join(b1, b2)

    @given(wide_bags, wide_bags)
    def test_operators_roundtrip_through_dicts(self, m1, m2):
        """Rebuilding an operator result from its dict view is lossless."""
        for op in (join, union, minus, left_join):
            result = op(Bag(m1), Bag(m2))
            assert Bag(list(result)) == result


class TestColumnarLayout:
    def test_from_rows_roundtrip(self):
        bag = Bag.from_rows(("a", "b"), [(1, 2), (3, UNBOUND)])
        assert list(bag) == [{"a": 1, "b": 2}, {"a": 3}]
        assert bag.schema == ("a", "b")
        assert bag.slot("b") == 1 and bag.slot("z") is None

    def test_unbound_columns_do_not_affect_equality(self):
        padded = Bag.from_rows(("a", "b"), [(1, UNBOUND)])
        assert padded == Bag([{"a": 1}])
        assert padded.variables() == {"a"}

    def test_add_widens_schema(self):
        bag = Bag([{"a": 1}])
        bag.add({"a": 2, "b": 3})
        assert set(bag.schema) == {"a", "b"}
        assert bag == Bag([{"a": 1}, {"a": 2, "b": 3}])
        assert bag.certain_variables() == {"a"}

    def test_add_row_checks_width(self):
        import pytest

        bag = Bag.from_rows(("a",), [])
        bag.add_row((1,))
        with pytest.raises(ValueError):
            bag.add_row((1, 2))
        assert list(bag) == [{"a": 1}]

    def test_variables_cache_invalidated_by_add(self):
        bag = Bag([{"a": 1}])
        assert bag.variables() == {"a"}
        bag.add({"b": 2})
        assert bag.variables() == {"a", "b"}
        assert bag.certain_variables() == frozenset()

    def test_unbound_is_falsy_singleton(self):
        assert not UNBOUND
        assert repr(UNBOUND) == "UNBOUND"

    @given(wide_bags)
    def test_certain_and_variables_match_dict_view(self, m1):
        bag = Bag(m1)
        assert bag.variables() == frozenset().union(*(m.keys() for m in m1), frozenset())
        if m1:
            expected_certain = frozenset(
                set(m1[0].keys()).intersection(*(m.keys() for m in m1))
            )
        else:
            expected_certain = frozenset()
        assert bag.certain_variables() == expected_certain

    @given(wide_bags)
    def test_project_matches_dict_view(self, m1):
        bag = Bag(m1).project(["a", "c"])
        expected = Bag(
            {v: m[v] for v in ("a", "c") if v in m} for m in m1
        )
        assert bag == expected
