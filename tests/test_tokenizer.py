"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql import SparqlSyntaxError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select WHERE union")[:3] == ["KEYWORD"] * 3
        assert values("select")[0] == "SELECT"

    def test_iri(self):
        tokens = tokenize("<http://a/b#c>")
        assert tokens[0].kind == "IRI" and tokens[0].value == "http://a/b#c"

    def test_variable_both_sigils(self):
        assert values("?x $y")[:2] == ["x", "y"]

    def test_pname(self):
        token = tokenize("dbo:wikiPageWikiLink")[0]
        assert token.kind == "PNAME" and token.value == "dbo:wikiPageWikiLink"

    def test_pname_with_extra_colon(self):
        token = tokenize("dbr:Category:Cell_biology")[0]
        assert token.value == "dbr:Category:Cell_biology"

    def test_pname_trailing_dot_is_separator(self):
        tokens = tokenize("dbo:Person.")
        assert tokens[0].value == "dbo:Person"
        assert tokens[1].kind == "PUNCT" and tokens[1].value == "."

    def test_a_keyword(self):
        token = tokenize("a")[0]
        assert token.kind == "KEYWORD" and token.value == "A"

    def test_a_followed_by_dot(self):
        tokens = tokenize("?x a dbo:Person .")
        assert [t.kind for t in tokens[:4]] == ["VAR", "KEYWORD", "PNAME", "PUNCT"]

    def test_punctuation(self):
        assert values("{ } . *")[:4] == ["{", "}", ".", "*"]

    def test_eof_always_last(self):
        assert kinds("")[-1] == "EOF"
        assert kinds("?x")[-1] == "EOF"


class TestLiterals:
    def test_plain_string(self):
        token = tokenize('"hello world"')[0]
        assert token.kind == "STRING" and token.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b\nc"')[0].value == 'a"b\nc'

    def test_unicode_escape(self):
        assert tokenize(r'"é"')[0].value == "é"

    def test_langtag(self):
        tokens = tokenize('"hi"@en-GB')
        assert tokens[1].kind == "LANGTAG" and tokens[1].value == "en-GB"

    def test_datatype_marker(self):
        tokens = tokenize('"5"^^<http://t>')
        assert tokens[1].kind == "DTYPE"
        assert tokens[2].kind == "IRI"

    def test_integer_and_decimal(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].kind == "INTEGER" and tokens[0].value == "42"
        assert tokens[1].kind == "DECIMAL" and tokens[1].value == "3.14"

    def test_integer_then_dot_separator(self):
        tokens = tokenize("42 .")
        assert tokens[0].kind == "INTEGER"
        assert tokens[1].value == "."


class TestCommentsAndWhitespace:
    def test_comment_to_end_of_line(self):
        assert values("?x # comment here\n?y")[:2] == ["x", "y"]

    def test_whitespace_ignored(self):
        assert kinds("  \t\n ?x ")[:1] == ["VAR"]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<http://unterminated",
            '"unterminated',
            "?",  # empty variable
            "@",  # empty language tag
            "%",  # stray character
            "bareword",  # not a keyword nor pname
        ],
    )
    def test_bad_input_raises(self, bad):
        with pytest.raises(SparqlSyntaxError):
            tokenize(bad)

    def test_error_has_position(self):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            tokenize("?x\n  %")
        assert excinfo.value.line == 2
