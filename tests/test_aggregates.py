"""GROUP BY / aggregation and the EngineOptions / PreparedQuery API.

Deterministic unit coverage for PRs' aggregate stack: grammar and
validation errors, the zero-decode execution invariants (``terms_decoded``,
``rows_kernel_filtered``), the grouped edge cases (UNBOUND keys, empty
groups), and the engine-options redesign (keyword construction, the
positional deprecation shim, pickling through spawn-style round trips).
"""

from __future__ import annotations

import pickle

import pytest

from repro import EngineOptions, PreparedQuery, SparqlUOEngine
from repro.core.metrics import EXEC_COUNTERS
from repro.rdf import Dataset, IRI, Literal, Triple
from repro.sparql import parse_query
from repro.sparql.aggregates import aggregate_terms, count_literal, numeric_literal
from repro.sparql.errors import SparqlSyntaxError, UnsupportedFeatureError
from repro.storage import TripleStore

EX = "http://agg.test/"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"


def _int(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_INTEGER)


@pytest.fixture(scope="module")
def store() -> TripleStore:
    triples = []
    for i in range(12):
        s = IRI(EX + f"s{i}")
        triples.append(Triple(s, IRI(EX + "kind"), IRI(EX + f"K{i % 3}")))
        triples.append(Triple(s, IRI(EX + "score"), _int(i)))
        if i % 2 == 0:
            triples.append(Triple(s, IRI(EX + "label"), Literal(f"n{i}")))
    return TripleStore.from_dataset(Dataset(triples)).freeze()


def _rows(result):
    return [dict(mu) for mu in result]


# ----------------------------------------------------------------------
# grammar and validation
# ----------------------------------------------------------------------
class TestParsing:
    def test_group_by_with_aggregates_parses(self):
        q = parse_query(
            "SELECT ?k (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?k } GROUP BY ?k"
        )
        assert [v.name for v in q.group_by] == ["k"]
        assert q.groups
        (agg,) = q.aggregates
        assert (agg.function, agg.distinct, agg.name) == ("COUNT", True, "n")
        assert q.projection_names() == ["k", "n"]

    def test_every_function_parses(self):
        q = parse_query(
            "SELECT (COUNT(*) AS ?c) (SUM(?v) AS ?s) (MIN(?v) AS ?lo) "
            "(MAX(?v) AS ?hi) (AVG(?v) AS ?m) WHERE { ?x ?p ?v }"
        )
        assert [a.function for a in q.aggregates] == [
            "COUNT",
            "SUM",
            "MIN",
            "MAX",
            "AVG",
        ]
        assert q.aggregates[0].expression is None

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * WHERE { ?x ?p ?y } GROUP BY ?x",
            "SELECT ?y (COUNT(*) AS ?n) WHERE { ?x ?p ?y } GROUP BY ?x",
            "SELECT (SUM(*) AS ?n) WHERE { ?x ?p ?y }",
            "SELECT (COUNT(?x) ?n) WHERE { ?x ?p ?y }",
            "SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?y } GROUP BY",
            "SELECT (COUNT(?x) AS ?n) (SUM(?y) AS ?n) WHERE { ?x ?p ?y }",
        ],
    )
    def test_invalid_aggregate_queries_rejected(self, text):
        with pytest.raises(SparqlSyntaxError):
            parse_query(text)

    def test_non_aggregate_projection_expression_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_query("SELECT (REGEX(?x, \"a\") AS ?n) WHERE { ?x ?p ?y }")


# ----------------------------------------------------------------------
# shared fold semantics
# ----------------------------------------------------------------------
class TestAggregateTerms:
    def test_count(self):
        assert aggregate_terms("COUNT", [_int(1), _int(1)], False) == count_literal(2)
        assert aggregate_terms("COUNT", [], False) == count_literal(0)

    def test_sum_and_avg_integral(self):
        values = [_int(1), _int(2), _int(3)]
        assert aggregate_terms("SUM", values, False) == numeric_literal(6)
        assert aggregate_terms("AVG", values, False) == numeric_literal(2)

    def test_avg_fractional_is_double(self):
        got = aggregate_terms("AVG", [_int(1), _int(2)], False)
        assert got.datatype.endswith("double") and float(got.lexical) == 1.5

    def test_sum_empty_is_zero(self):
        assert aggregate_terms("SUM", [], False) == numeric_literal(0)

    def test_min_max_empty_is_unbound(self):
        assert aggregate_terms("MIN", [], False) is None
        assert aggregate_terms("MAX", [], False) is None

    def test_sum_non_numeric_is_unbound(self):
        assert aggregate_terms("SUM", [Literal("x"), _int(1)], False) is None

    def test_distinct_dedupes(self):
        values = [_int(2), _int(2), _int(3)]
        assert aggregate_terms("SUM", values, True) == numeric_literal(5)
        assert aggregate_terms("COUNT", values, True) == count_literal(2)


# ----------------------------------------------------------------------
# grouped execution
# ----------------------------------------------------------------------
class TestGroupedExecution:
    def test_group_by_count(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT ?k (COUNT(*) AS ?n) WHERE {{ ?s <{EX}kind> ?k }} "
            "GROUP BY ?k ORDER BY ?k"
        )
        assert _rows(result) == [
            {"k": IRI(EX + "K0"), "n": count_literal(4)},
            {"k": IRI(EX + "K1"), "n": count_literal(4)},
            {"k": IRI(EX + "K2"), "n": count_literal(4)},
        ]

    def test_pure_count_decodes_nothing(self, store):
        engine = SparqlUOEngine(store)
        EXEC_COUNTERS.reset()
        result = engine.execute(
            f"SELECT (COUNT(*) AS ?n) WHERE {{ ?s <{EX}score> ?v }}"
        )
        assert _rows(result) == [{"n": count_literal(12)}]
        assert EXEC_COUNTERS.terms_decoded == 0

    def test_numeric_folds(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?m) (MIN(?v) AS ?lo) "
            f"(MAX(?v) AS ?hi) WHERE {{ ?x <{EX}score> ?v }}"
        )
        assert _rows(result) == [
            {
                "s": numeric_literal(66),
                "m": numeric_literal(5.5),
                "lo": _int(0),
                "hi": _int(11),
            }
        ]

    def test_empty_input_implicit_group(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?s) (MIN(?v) AS ?lo) "
            f"WHERE {{ ?x <{EX}missing> ?v }}"
        )
        # One row: COUNT=0, SUM=0, MIN unbound.
        assert _rows(result) == [{"n": count_literal(0), "s": numeric_literal(0)}]

    def test_empty_input_with_group_by_is_empty(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT ?k (COUNT(*) AS ?n) WHERE {{ ?x <{EX}missing> ?k }} GROUP BY ?k"
        )
        assert len(result) == 0

    def test_unbound_group_key(self, store):
        # label exists only for even subjects: the odd ones group under
        # an UNBOUND key, which must surface as a row without ?l.
        result = SparqlUOEngine(store).execute(
            f"SELECT ?l (COUNT(*) AS ?n) WHERE {{ ?s <{EX}kind> ?k . "
            f"OPTIONAL {{ ?s <{EX}label> ?l }} }} GROUP BY ?l"
        )
        rows = _rows(result)
        unbound_rows = [r for r in rows if "l" not in r]
        assert len(rows) == 7  # 6 labels + one UNBOUND group
        assert unbound_rows == [{"n": count_literal(6)}]

    def test_count_distinct_on_ids(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT (COUNT(DISTINCT ?k) AS ?n) WHERE {{ ?s <{EX}kind> ?k }}"
        )
        assert _rows(result) == [{"n": count_literal(3)}]

    def test_order_by_aggregate_alias(self, store):
        result = SparqlUOEngine(store).execute(
            f"SELECT ?k (SUM(?v) AS ?t) WHERE {{ ?s <{EX}kind> ?k . "
            f"?s <{EX}score> ?v }} GROUP BY ?k ORDER BY DESC(?t) LIMIT 1"
        )
        # K2 holds scores 2,5,8,11 = 26, the largest bucket.
        assert _rows(result) == [{"k": IRI(EX + "K2"), "t": numeric_literal(26)}]

    def test_group_plan_in_explain(self, store):
        engine = SparqlUOEngine(store)
        text = engine.explain(
            f"SELECT ?k (COUNT(*) AS ?n) WHERE {{ ?s <{EX}kind> ?k }} GROUP BY ?k"
        )
        assert "GroupBy[?k]" in text
        assert "(COUNT(*) AS ?n)" in text
        assert "estimate: cost=" in text


# ----------------------------------------------------------------------
# filter kernels
# ----------------------------------------------------------------------
class TestKernels:
    QUERY = f"SELECT ?s ?v WHERE {{ ?s <{EX}score> ?v . FILTER (?v >= 6) }}"

    def test_kernel_screens_rows(self, store):
        engine = SparqlUOEngine(store)
        EXEC_COUNTERS.reset()
        result = engine.execute(self.QUERY)
        assert len(result) == 6
        assert EXEC_COUNTERS.rows_kernel_filtered >= 12

    def test_kernels_off_matches(self, store):
        on = SparqlUOEngine(store).execute(self.QUERY)
        EXEC_COUNTERS.reset()
        off = SparqlUOEngine(store, kernels=False).execute(self.QUERY)
        assert EXEC_COUNTERS.rows_kernel_filtered == 0
        assert on.solutions == off.solutions

    def test_regex_stays_on_row_loop(self, store):
        engine = SparqlUOEngine(store)
        EXEC_COUNTERS.reset()
        result = engine.execute(
            f'SELECT ?s WHERE {{ ?s <{EX}label> ?l . FILTER regex(?l, "n1") }}'
        )
        assert len(result) == 1  # labels are n0,n2,...,n10 — only n10 matches "n1"
        assert EXEC_COUNTERS.rows_kernel_filtered == 0

    def test_counters_reach_query_stats(self, store):
        result = SparqlUOEngine(store).execute(self.QUERY)
        assert "rows_kernel_filtered" in result.exec_counters
        assert "terms_decoded" in result.exec_counters


# ----------------------------------------------------------------------
# EngineOptions / PreparedQuery API
# ----------------------------------------------------------------------
class TestEngineOptions:
    def test_keyword_construction_never_warns(self, store, recwarn):
        engine = SparqlUOEngine(store, bgp_engine="hashjoin", mode="cp", kernels=False)
        assert engine.mode.value == "cp" and engine.kernels is False
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_options_object(self, store):
        options = EngineOptions(mode="tt", pushdown=False, kernels=False)
        engine = SparqlUOEngine(store, options=options)
        assert engine.options == options
        assert engine.mode.value == "tt"
        assert engine.evaluator.pushdown is False
        assert engine.evaluator.kernels is False

    def test_keywords_override_options(self, store):
        engine = SparqlUOEngine(
            store, options=EngineOptions(mode="tt"), mode="base"
        )
        assert engine.mode.value == "base"

    def test_positional_args_deprecated(self, store):
        with pytest.warns(DeprecationWarning):
            engine = SparqlUOEngine(store, "hashjoin", "base")
        assert engine.mode.value == "base"

    def test_unknown_option_rejected(self, store):
        with pytest.raises(TypeError, match="turbo"):
            SparqlUOEngine(store, turbo=True)

    def test_unknown_engine_still_value_error(self, store):
        with pytest.raises(ValueError, match="unknown BGP engine"):
            SparqlUOEngine(store, bgp_engine="mystery")

    def test_options_pickle_roundtrip(self):
        options = EngineOptions(bgp_engine="hashjoin", kernels=False)
        assert pickle.loads(pickle.dumps(options)) == options

    def test_repr_shows_only_non_defaults(self):
        assert repr(EngineOptions()) == "EngineOptions()"
        assert repr(EngineOptions(mode="cp")) == "EngineOptions(mode='cp')"

    def test_server_config_builds_options(self):
        from repro.server.config import ServerConfig

        config = ServerConfig(data="x.snap", engine="hashjoin", kernels=False)
        options = config.engine_options()
        assert options.bgp_engine == "hashjoin"
        assert options.mode == "full"
        assert options.kernels is False


class TestPreparedQuery:
    TEXT = f"SELECT ?s WHERE {{ ?s <{EX}kind> ?k }}"

    def test_prepare_returns_dataclass(self, store):
        engine = SparqlUOEngine(store)
        prepared = engine.prepare(self.TEXT)
        assert isinstance(prepared, PreparedQuery)
        assert prepared.query.projection_names() == ["s"]
        assert not prepared.cached

    def test_legacy_tuple_unpacking(self, store):
        engine = SparqlUOEngine(store)
        parsed, tree, report, parse_s, transform_s = engine.prepare(self.TEXT)
        assert parsed.projection_names() == ["s"]
        assert tree is engine.prepare(self.TEXT).tree

    def test_cache_hit_flag(self, store):
        engine = SparqlUOEngine(store)
        engine.prepare(self.TEXT)
        assert engine.prepare(self.TEXT).cached
