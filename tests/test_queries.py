"""The 24 benchmark queries: parseability, typing, and liveness on the
generated workloads (integration-level)."""

import pytest

from repro.core import SparqlUOEngine, count_bgp, depth
from repro.datasets import (
    DBPEDIA_QUERIES,
    GROUP1,
    GROUP2,
    INTRO_OPTIONAL_QUERY,
    INTRO_UNION_QUERY,
    LUBM_QUERIES,
    QUERY_TYPES,
    generate_dbpedia,
    generate_lubm,
)
from repro.sparql import (
    OptionalExpression,
    UnionExpression,
    GroupGraphPattern,
    parse_query,
)
from repro.storage import TripleStore


def uses(group, kind) -> bool:
    for element in group.elements:
        if isinstance(element, kind):
            return True
        if isinstance(element, GroupGraphPattern) and uses(element, kind):
            return True
        if isinstance(element, UnionExpression):
            if kind is UnionExpression:
                return True
            if any(uses(b, kind) for b in element.branches):
                return True
        if isinstance(element, OptionalExpression):
            if kind is OptionalExpression:
                return True
            if uses(element.pattern, kind):
                return True
    return False


class TestParseability:
    @pytest.mark.parametrize("name", GROUP1 + GROUP2)
    def test_lubm_queries_parse(self, name):
        query = parse_query(LUBM_QUERIES[name])
        assert count_bgp(query) >= 1 and depth(query) >= 1

    @pytest.mark.parametrize("name", GROUP1 + GROUP2)
    def test_dbpedia_queries_parse(self, name):
        query = parse_query(DBPEDIA_QUERIES[name])
        assert count_bgp(query) >= 1 and depth(query) >= 1

    def test_intro_queries_parse(self):
        parse_query(INTRO_UNION_QUERY)
        parse_query(INTRO_OPTIONAL_QUERY)


class TestTypeColumn:
    """The Type column of Tables 3–4 matches the queries' actual shape."""

    @pytest.mark.parametrize("dataset,texts", [("lubm", LUBM_QUERIES), ("dbpedia", DBPEDIA_QUERIES)])
    def test_types_match_structure(self, dataset, texts):
        for name, declared in QUERY_TYPES[dataset].items():
            group = parse_query(texts[name]).where
            has_union = uses(group, UnionExpression)
            has_optional = uses(group, OptionalExpression)
            if "U" in declared:
                assert has_union, (dataset, name)
            if "O" in declared:
                assert has_optional, (dataset, name)
            if declared == "U":
                assert not has_optional, (dataset, name)
            if declared == "O":
                assert not has_union, (dataset, name)


class TestLiveness:
    """Every benchmark query returns results on its generated dataset —
    the generator/queries contract the whole harness depends on.

    Small scales keep this suite fast; the named-individual guarantees
    do not depend on scale (q2.5/q2.6 need >= 13 universities)."""

    @pytest.fixture(scope="class")
    def lubm_engine(self):
        store = TripleStore.from_dataset(
            generate_lubm(universities=13, undergrads_small=10, grads_per_department=4)
        )
        return SparqlUOEngine(store, bgp_engine="wco", mode="full")

    @pytest.fixture(scope="class")
    def dbpedia_engine(self):
        store = TripleStore.from_dataset(generate_dbpedia(articles=600))
        return SparqlUOEngine(store, bgp_engine="wco", mode="full")

    @pytest.mark.parametrize("name", GROUP1 + GROUP2)
    def test_lubm_queries_nonempty(self, lubm_engine, name):
        assert len(lubm_engine.execute(LUBM_QUERIES[name])) > 0, name

    @pytest.mark.parametrize("name", GROUP1 + GROUP2)
    def test_dbpedia_queries_nonempty(self, dbpedia_engine, name):
        assert len(dbpedia_engine.execute(DBPEDIA_QUERIES[name])) > 0, name
