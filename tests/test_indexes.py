"""Unit and property tests for the permutation indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import TermDictionary
from repro.storage import TripleIndexes

from .strategies import datasets


def build(triples):
    idx = TripleIndexes()
    for t in triples:
        idx.insert(t)
    return idx


class TestInsert:
    def test_insert_and_len(self):
        idx = build([(0, 1, 2)])
        assert len(idx) == 1

    def test_duplicate_rejected(self):
        idx = TripleIndexes()
        assert idx.insert((0, 1, 2)) is True
        assert idx.insert((0, 1, 2)) is False
        assert len(idx) == 1

    def test_contains(self):
        idx = build([(0, 1, 2)])
        assert (0, 1, 2) in idx
        assert (2, 1, 0) not in idx


class TestLookups:
    @pytest.fixture
    def idx(self):
        return build([(0, 1, 2), (0, 1, 3), (4, 1, 2), (0, 5, 2), (4, 5, 3)])

    def test_objects_for_sp(self, idx):
        assert sorted(idx.objects_for_sp(0, 1)) == [2, 3]

    def test_subjects_for_po(self, idx):
        assert sorted(idx.subjects_for_po(1, 2)) == [0, 4]

    def test_predicates_for_so(self, idx):
        assert sorted(idx.predicates_for_so(0, 2)) == [1, 5]

    def test_po_for_s(self, idx):
        assert sorted(idx.po_for_s(4)) == [(1, 2), (5, 3)]

    def test_so_for_p(self, idx):
        assert sorted(idx.so_for_p(5)) == [(0, 2), (4, 3)]

    def test_sp_for_o(self, idx):
        assert sorted(idx.sp_for_o(3)) == [(0, 1), (4, 5)]

    def test_missing_keys_give_empty(self, idx):
        assert idx.objects_for_sp(9, 9) == []
        assert idx.po_for_s(9) == []

    def test_subjects_objects_of_predicate(self, idx):
        assert idx.subjects_of_predicate(1) == {0, 4}
        assert idx.objects_of_predicate(1) == {2, 3}


class TestScanAndCount:
    @given(datasets(), st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_scan_matches_naive_filter(self, dataset, bound):
        """For every binding combination, scan() equals a full filter."""
        dictionary = TermDictionary()
        triples = [dictionary.encode_triple(t) for t in dataset]
        idx = build(triples)
        if not triples:
            return
        probe = triples[0]
        s = probe[0] if bound[0] else None
        p = probe[1] if bound[1] else None
        o = probe[2] if bound[2] else None
        expected = sorted(
            t
            for t in set(triples)
            if (s is None or t[0] == s)
            and (p is None or t[1] == p)
            and (o is None or t[2] == o)
        )
        assert sorted(idx.scan(s, p, o)) == expected
        assert idx.count(s, p, o) == len(expected)

    def test_full_scan(self):
        idx = build([(0, 1, 2), (3, 4, 5)])
        assert sorted(idx.scan()) == [(0, 1, 2), (3, 4, 5)]
        assert idx.count() == 2
