"""Regression tests: columnar-bag edge cases under the new modifiers.

PR 1 introduced the UNBOUND sentinel for columnar solution rows; these
tests pin down its interaction with the FILTER / modifier extension:
ORDER BY placement of unbound slots, DISTINCT over rows that differ
only in unboundness, and SPARQL's error semantics for filters touching
post-OPTIONAL unbound variables.
"""

from __future__ import annotations

import pytest

from repro import Dataset, IRI, Literal, SparqlUOEngine
from repro.sparql import UNBOUND
from repro.sparql.parser import parse_query
from repro.sparql.semantics import execute_query

EX = "http://example.org/"


def ex(name: str) -> IRI:
    return IRI(EX + name)


def int_lit(value: int) -> Literal:
    return Literal(str(value), datatype="http://www.w3.org/2001/XMLSchema#integer")


@pytest.fixture(scope="module")
def optional_dataset() -> Dataset:
    """Four subjects with :p; only half carry the OPTIONAL :q value, and
    two share the same :q value (DISTINCT fodder)."""
    d = Dataset()
    for i in range(4):
        d.add_spo(ex(f"s{i}"), ex("p"), int_lit(i))
    d.add_spo(ex("s0"), ex("q"), Literal("dup"))
    d.add_spo(ex("s1"), ex("q"), Literal("dup"))
    return d


ENGINES = ("wco", "hashjoin")
PUSHDOWN = (True, False)


def engines_for(dataset):
    for name in ENGINES:
        for pushdown in PUSHDOWN:
            yield name, pushdown, SparqlUOEngine.for_dataset(
                dataset, bgp_engine=name, mode="full", pushdown=pushdown
            )


class TestOrderByUnbound:
    QUERY = (
        "SELECT ?x ?n WHERE { ?x <http://example.org/p> ?v . "
        "OPTIONAL { ?x <http://example.org/q> ?n } } ORDER BY ?n ?x"
    )

    def test_unbound_sorts_first_ascending(self, optional_dataset):
        for name, pushdown, engine in engines_for(optional_dataset):
            result = engine.execute(self.QUERY)
            rows = list(result)
            bound_flags = ["n" in row for row in rows]
            # Unbound ?n rows (s2, s3) come first, then the bound ones.
            assert bound_flags == [False, False, True, True], (name, pushdown)
            assert [row["x"] for row in rows[:2]] == [ex("s2"), ex("s3")], (name, pushdown)

    def test_unbound_sorts_last_descending(self, optional_dataset):
        query = self.QUERY.replace("ORDER BY ?n ?x", "ORDER BY DESC(?n) ?x")
        for name, pushdown, engine in engines_for(optional_dataset):
            rows = list(engine.execute(query))
            bound_flags = ["n" in row for row in rows]
            assert bound_flags == [True, True, False, False], (name, pushdown)

    def test_matches_reference_order(self, optional_dataset):
        parsed = parse_query(self.QUERY)
        reference = execute_query(parsed, optional_dataset)
        ref_rows = [
            {n: v for n, v in zip(reference.schema, row) if v is not UNBOUND}
            for row in reference.rows
        ]
        for name, pushdown, engine in engines_for(optional_dataset):
            assert list(engine.execute(self.QUERY)) == ref_rows, (name, pushdown)


class TestDistinctWithUnbound:
    def test_unbound_and_bound_stay_distinct(self, optional_dataset):
        # s0 and s1 both reach ?n = "dup" (collapsing to one solution);
        # s2 and s3 leave ?n unbound (collapsing to another).  A row
        # with ?n unbound must NOT merge with a bound one.
        query = (
            "SELECT DISTINCT ?n WHERE { ?x <http://example.org/p> ?v . "
            "OPTIONAL { ?x <http://example.org/q> ?n } }"
        )
        for name, pushdown, engine in engines_for(optional_dataset):
            rows = list(engine.execute(query))
            assert len(rows) == 2, (name, pushdown)
            assert {("n" in row) for row in rows} == {True, False}, (name, pushdown)

    def test_distinct_on_encoded_rows_equals_decoded(self, optional_dataset):
        query = (
            "SELECT DISTINCT ?x ?n WHERE { ?x <http://example.org/p> ?v . "
            "OPTIONAL { ?x <http://example.org/q> ?n } }"
        )
        results = {
            (name, pushdown): sorted(
                frozenset(row.items()) for row in engine.execute(query)
            )
            for name, pushdown, engine in engines_for(optional_dataset)
        }
        baseline = next(iter(results.values()))
        assert all(value == baseline for value in results.values()), results.keys()


class TestFilterOnUnbound:
    def test_comparison_error_drops_row(self, optional_dataset):
        # ?n is unbound for s2/s3: '?n = "dup"' errors there ⇒ dropped.
        query = (
            "SELECT ?x WHERE { ?x <http://example.org/p> ?v . "
            'OPTIONAL { ?x <http://example.org/q> ?n } FILTER (?n = "dup") }'
        )
        for name, pushdown, engine in engines_for(optional_dataset):
            rows = sorted(row["x"].value for row in engine.execute(query))
            assert rows == [EX + "s0", EX + "s1"], (name, pushdown)

    def test_bound_rescues_unbound_rows(self, optional_dataset):
        query = (
            "SELECT ?x WHERE { ?x <http://example.org/p> ?v . "
            "OPTIONAL { ?x <http://example.org/q> ?n } FILTER (!BOUND(?n)) }"
        )
        for name, pushdown, engine in engines_for(optional_dataset):
            rows = sorted(row["x"].value for row in engine.execute(query))
            assert rows == [EX + "s2", EX + "s3"], (name, pushdown)

    def test_error_absorbed_by_disjunction(self, optional_dataset):
        # err || true → true: the unbound comparison must not kill rows
        # the other disjunct accepts.
        query = (
            "SELECT ?x WHERE { ?x <http://example.org/p> ?v . "
            'OPTIONAL { ?x <http://example.org/q> ?n } FILTER (?n = "dup" || ?v >= 0) }'
        )
        for name, pushdown, engine in engines_for(optional_dataset):
            assert len(engine.execute(query)) == 4, (name, pushdown)

    def test_error_absorbed_by_conjunction(self, optional_dataset):
        # err && false → false (row dropped, no error escalation);
        # err && true → error (row dropped).  Either way nothing passes.
        query = (
            "SELECT ?x WHERE { ?x <http://example.org/p> ?v . "
            'OPTIONAL { ?x <http://example.org/q> ?n } FILTER (?n = "dup" && ?v < 0) }'
        )
        for name, pushdown, engine in engines_for(optional_dataset):
            assert len(engine.execute(query)) == 0, (name, pushdown)
