"""Unit tests for namespaces and the well-known prefix table."""

import pytest

from repro.rdf import DBO, IRI, Namespace, RDF, UB, WELL_KNOWN_PREFIXES


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x/")
        assert ns.thing == IRI("http://x/thing")

    def test_item_access(self):
        ns = Namespace("http://x/")
        assert ns["a-b.c"] == IRI("http://x/a-b.c")

    def test_term(self):
        assert Namespace("http://x/").term("t") == IRI("http://x/t")

    def test_contains(self):
        ns = Namespace("http://x/")
        assert ns.thing in ns
        assert IRI("http://y/thing") not in ns

    def test_underscore_attributes_raise(self):
        with pytest.raises(AttributeError):
            Namespace("http://x/")._private

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")


class TestWellKnownPrefixes:
    def test_contains_paper_prefixes(self):
        for prefix in ("rdf", "rdfs", "foaf", "owl", "dbo", "dbr", "dbp", "ub", "skos", "purl", "nsprov", "geo", "georss"):
            assert prefix in WELL_KNOWN_PREFIXES

    def test_ub_matches_lubm_ontology(self):
        assert WELL_KNOWN_PREFIXES["ub"] == "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
        assert UB.worksFor.value.endswith("#worksFor")

    def test_rdf_type(self):
        assert RDF.type == IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

    def test_dbo(self):
        assert DBO.wikiPageWikiLink.value == "http://dbpedia.org/ontology/wikiPageWikiLink"
