"""Unit tests for the FILTER / ORDER BY expression semantics."""

from __future__ import annotations

import pytest

from repro.rdf import IRI, Literal
from repro.sparql.bags import UNBOUND
from repro.sparql.expressions import (
    Arithmetic,
    BoundCall,
    Comparison,
    ConstantTerm,
    ExprError,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    RegexCall,
    UnaryMinus,
    VariableRef,
    effective_boolean_value,
    evaluate_expression,
    expression_variables,
    filter_passes,
    order_sort_key,
    term_value,
)

XSD = "http://www.w3.org/2001/XMLSchema#"


def num(value) -> Literal:
    text = str(value)
    return Literal(text, datatype=XSD + ("decimal" if "." in text else "integer"))


def const(term) -> ConstantTerm:
    return ConstantTerm(term)


class TestTermValue:
    def test_numeric_literals(self):
        assert term_value(num(5)) == 5
        assert term_value(num(2.5)) == 2.5
        assert term_value(Literal("3", datatype=XSD + "double")) == 3.0

    def test_boolean_literals(self):
        assert term_value(Literal("true", datatype=XSD + "boolean")) is True
        assert term_value(Literal("false", datatype=XSD + "boolean")) is False

    def test_plain_string(self):
        assert term_value(Literal("hi")) == "hi"

    def test_iri_stays_term(self):
        iri = IRI("http://x/")
        assert term_value(iri) is iri

    def test_lang_literal_stays_term(self):
        lit = Literal("hi", language="en")
        assert term_value(lit) is lit

    def test_malformed_number_errors(self):
        with pytest.raises(ExprError):
            term_value(Literal("abc", datatype=XSD + "integer"))


class TestEvaluation:
    def test_numeric_comparison_and_arithmetic(self):
        expr = Comparison("<", Arithmetic("+", VariableRef("x"), const(num(1))), const(num(5)))
        assert evaluate_expression(expr, {"x": num(3)}) is True
        assert evaluate_expression(expr, {"x": num(4)}) is False

    def test_int_decimal_cross_comparison(self):
        expr = Comparison("=", VariableRef("x"), const(num(2.0)))
        assert evaluate_expression(expr, {"x": num(2)}) is True

    def test_string_comparison(self):
        expr = Comparison("<", VariableRef("x"), const(Literal("b")))
        assert evaluate_expression(expr, {"x": Literal("a")}) is True

    def test_iri_equality_total(self):
        expr = Comparison("=", VariableRef("x"), const(IRI("http://x/a")))
        assert evaluate_expression(expr, {"x": IRI("http://x/a")}) is True
        assert evaluate_expression(expr, {"x": IRI("http://x/b")}) is False
        # mixed kinds are unequal, not an error
        assert evaluate_expression(expr, {"x": num(1)}) is False

    def test_iri_ordering_errors(self):
        expr = Comparison("<", VariableRef("x"), const(num(1)))
        with pytest.raises(ExprError):
            evaluate_expression(expr, {"x": IRI("http://x/a")})

    def test_unbound_variable_errors(self):
        with pytest.raises(ExprError):
            evaluate_expression(VariableRef("missing"), {})

    def test_division_by_zero_errors(self):
        expr = Arithmetic("/", const(num(1)), const(num(0)))
        with pytest.raises(ExprError):
            evaluate_expression(expr, {})

    def test_unary_minus(self):
        assert evaluate_expression(UnaryMinus(const(num(3))), {}) == -3

    def test_bound(self):
        assert evaluate_expression(BoundCall("x"), {"x": num(1)}) is True
        assert evaluate_expression(BoundCall("x"), {}) is False

    def test_regex(self):
        expr = RegexCall(VariableRef("s"), const(Literal("^ab")), None)
        assert evaluate_expression(expr, {"s": Literal("abc")}) is True
        assert evaluate_expression(expr, {"s": Literal("xabc")}) is False

    def test_regex_case_insensitive_flag(self):
        expr = RegexCall(VariableRef("s"), const(Literal("^AB")), const(Literal("i")))
        assert evaluate_expression(expr, {"s": Literal("abc")}) is True

    def test_regex_on_iri_errors(self):
        expr = RegexCall(VariableRef("s"), const(Literal("a")), None)
        with pytest.raises(ExprError):
            evaluate_expression(expr, {"s": IRI("http://a/")})

    def test_invalid_regex_pattern_errors(self):
        expr = RegexCall(const(Literal("a")), const(Literal("[")), None)
        with pytest.raises(ExprError):
            evaluate_expression(expr, {})


class TestThreeValuedLogic:
    ERR = Comparison("<", VariableRef("missing"), const(num(1)))
    TRUE = Comparison("=", const(num(1)), const(num(1)))
    FALSE = Comparison("=", const(num(0)), const(num(1)))

    def test_error_or_true_is_true(self):
        assert evaluate_expression(LogicalOr(self.ERR, self.TRUE), {}) is True
        assert evaluate_expression(LogicalOr(self.TRUE, self.ERR), {}) is True

    def test_error_or_false_propagates(self):
        with pytest.raises(ExprError):
            evaluate_expression(LogicalOr(self.ERR, self.FALSE), {})

    def test_error_and_false_is_false(self):
        assert evaluate_expression(LogicalAnd(self.ERR, self.FALSE), {}) is False
        assert evaluate_expression(LogicalAnd(self.FALSE, self.ERR), {}) is False

    def test_error_and_true_propagates(self):
        with pytest.raises(ExprError):
            evaluate_expression(LogicalAnd(self.ERR, self.TRUE), {})

    def test_filter_passes_treats_error_as_false(self):
        assert filter_passes(self.ERR, {}) is False
        assert filter_passes(LogicalNot(self.FALSE), {}) is True


class TestEffectiveBooleanValue:
    def test_values(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(0) is False
        assert effective_boolean_value(2.5) is True
        assert effective_boolean_value("") is False
        assert effective_boolean_value("x") is True

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExprError):
            effective_boolean_value(IRI("http://x/"))


class TestOrderSortKey:
    def test_global_ranking(self):
        keys = [
            order_sort_key(UNBOUND),
            order_sort_key(ExprError("boom")),
            order_sort_key(IRI("http://a/")),
            order_sort_key(3),
            order_sort_key("zzz"),
        ]
        assert keys == sorted(keys)

    def test_numbers_order_by_value_across_types(self):
        assert order_sort_key(2) < order_sort_key(10)
        assert order_sort_key(2.5) < order_sort_key(num(3))  # literal parses numeric

    def test_unbound_before_everything(self):
        assert order_sort_key(UNBOUND) < order_sort_key(IRI("http://a/"))
        assert order_sort_key(None) == order_sort_key(UNBOUND)


def test_expression_variables():
    expr = LogicalAnd(
        Comparison("<", VariableRef("a"), VariableRef("b")),
        LogicalOr(BoundCall("c"), RegexCall(VariableRef("d"), const(Literal("x")), None)),
    )
    assert expression_variables(expr) == frozenset("abcd")
