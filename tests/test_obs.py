"""Observability tests: spans, templates, slow-query log, HTTP tracing.

Unit tests cover the :mod:`repro.obs` pieces in isolation (tracer
nesting and abort semantics, constant lifting, the bounded registry,
the size-bounded JSONL log).  Engine-level tests assert the span tree
is well-formed across engines × sorted_runs × kernels and under LIMIT
early-exit and timeout abort.  HTTP tests run a real server and check
the full propagation story: header-activated traces stitched across
the pool under one request id, cache-hit counters, the
``/debug/templates`` registry, the slow-query log on disk, and a
Prometheus text-format lint of the whole ``/metrics`` exposition.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import EngineOptions, SparqlUOEngine
from repro.datasets.lubm import generate_lubm
from repro.obs import SlowQueryLog, TemplateRegistry, lift_template, render_trace
from repro.obs import trace as obs_trace
from repro.rdf import Dataset, IRI, Literal, dump_ntriples
from repro.server import ServerConfig, SparqlServer
from repro.sparql.errors import QueryTimeoutError
from repro.sparql.parser import is_update_request, parse_query
from repro.storage import TripleStore

EX = "http://example.org/"
UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
QUERY_SLOW = "SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }"


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test may leak an armed process-global tracer."""
    yield
    obs_trace.disarm()


def _small_dataset() -> Dataset:
    d = Dataset()
    for i in range(12):
        d.add_spo(IRI(EX + f"s{i}"), IRI(EX + "p"), IRI(EX + f"o{i % 3}"))
        d.add_spo(IRI(EX + f"s{i}"), IRI(EX + "name"), Literal(f"n{i}"))
        d.add_spo(
            IRI(EX + f"s{i}"),
            IRI(EX + "score"),
            Literal(str(i), datatype="http://www.w3.org/2001/XMLSchema#integer"),
        )
    return d


@pytest.fixture(scope="module")
def small_store():
    return TripleStore.from_dataset(_small_dataset()).freeze()


def assert_well_formed(node, _path="root"):
    """Every span: a name, a closed non-negative ms, recursive children."""
    assert isinstance(node, dict), _path
    assert isinstance(node.get("name"), str) and node["name"], _path
    assert isinstance(node.get("ms"), (int, float)) and node["ms"] >= 0, _path
    for index, child in enumerate(node.get("children", ())):
        assert_well_formed(child, f"{_path}/{node['name']}[{index}]")
    json.dumps(node)  # the wire representation must serialize


def span_names(node):
    names = [node.get("name")]
    for child in node.get("children", ()):
        names.extend(span_names(child))
    return names


def find_span(node, name):
    if node.get("name") == name:
        return node
    for child in node.get("children", ()):
        found = find_span(child, name)
        if found is not None:
            return found
    return None


# ----------------------------------------------------------------------
# tracer unit tests
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans(self):
        tracer = obs_trace.Tracer("query")
        tracer.begin("parse")
        tracer.end(tokens=7)
        tracer.begin("scan")
        tracer.begin("decode")
        tracer.end()
        tracer.end(rows=3)
        tree = tracer.finish()
        assert_well_formed(tree)
        assert [c["name"] for c in tree["children"]] == ["parse", "scan"]
        scan = tree["children"][1]
        assert [c["name"] for c in scan["children"]] == ["decode"]
        assert scan["meta"]["rows"] == 3
        assert tree["children"][0]["meta"]["tokens"] == 7

    def test_end_imbalance_tolerated(self):
        tracer = obs_trace.Tracer("query")
        tracer.end()  # nothing open beyond the root
        tracer.end()
        tree = tracer.finish()
        assert tree["name"] == "query" and not tree.get("children")

    def test_finish_closes_open_spans_marked_aborted(self):
        tracer = obs_trace.Tracer("query")
        tracer.begin("scan")
        tracer.begin("decode")  # both left open, as after an exception
        tree = tracer.finish(aborted="timeout")
        assert_well_formed(tree)
        assert tree["aborted"] == "timeout"
        scan = tree["children"][0]
        assert scan["aborted"] == "timeout"
        assert scan["children"][0]["aborted"] == "timeout"

    def test_finish_idempotent(self):
        tracer = obs_trace.Tracer("query")
        tracer.begin("scan")
        first = tracer.finish()
        second = tracer.finish(aborted="late")  # must not re-mark
        assert second["children"][0].get("aborted") is None
        assert first["children"][0]["name"] == second["children"][0]["name"]

    def test_request_id_lands_in_root_meta(self):
        tree = obs_trace.Tracer("worker", request_id="req-1").finish()
        assert tree["meta"]["request_id"] == "req-1"

    def test_graft_round_trips_serialized_subtree(self):
        worker = obs_trace.Tracer("worker", request_id="abc")
        worker.begin("scan")
        worker.end(rows=5)
        subtree = worker.finish()

        parent = obs_trace.Tracer("request")
        parent.begin("pool")
        parent.graft(subtree)
        parent.end()
        tree = parent.finish()
        assert_well_formed(tree)
        grafted = find_span(tree, "worker")
        assert grafted is not None
        assert grafted["meta"]["request_id"] == "abc"
        assert find_span(grafted, "scan")["meta"]["rows"] == 5

    def test_graft_ignores_junk(self):
        parent = obs_trace.Tracer("request")
        parent.graft(None)
        parent.graft("not a dict")  # type: ignore[arg-type]
        parent.graft({"no_name": True})
        assert parent.finish().get("children") is None

    def test_counter_deltas_scoped_to_span(self, small_store):
        engine = SparqlUOEngine(small_store, bgp_engine="hashjoin")
        tracer = obs_trace.arm(obs_trace.Tracer("query"))
        try:
            engine.execute(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o0> }}")
        finally:
            tree = tracer.finish()
            obs_trace.disarm()
        decode = find_span(tree, "decode")
        assert decode is not None
        assert decode["counters"]["terms_decoded"] > 0
        # The root's interval covers the children's, so its counter
        # delta includes theirs.
        assert tree["counters"]["terms_decoded"] >= decode["counters"]["terms_decoded"]

    def test_render_trace_annotated_tree(self):
        tracer = obs_trace.Tracer("query")
        tracer.begin("scan", bgp=0)
        tracer.begin("decode")
        tracer.end()
        tracer.end(rows=2)
        text = render_trace(tracer.finish())
        lines = text.splitlines()
        assert lines[0].startswith("query (")
        assert any("|- scan" in line or "`- scan" in line for line in lines)
        assert any("`- decode" in line for line in lines)
        assert any("rows=2" in line for line in lines)

    def test_render_marks_aborts(self):
        tracer = obs_trace.Tracer("query")
        tracer.begin("scan")
        text = render_trace(tracer.finish(aborted="timeout"))
        assert "!aborted=timeout" in text


# ----------------------------------------------------------------------
# constant lifting
# ----------------------------------------------------------------------
class TestLiftTemplate:
    def lift(self, text):
        lifted = lift_template(parse_query(text))
        assert lifted is not None
        return lifted

    def test_same_shape_different_constants_fold(self):
        a = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o1> }}")
        b = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o2> }}")
        assert a["hash"] == b["hash"]
        assert a["text"] == b["text"]
        assert a["constants"] == 1

    def test_different_shapes_do_not_fold(self):
        a = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o1> }}")
        b = self.lift(f"SELECT ?x WHERE {{ <{EX}o1> <{EX}p> ?x }}")
        assert a["hash"] != b["hash"]

    def test_predicates_stay_concrete(self):
        a = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}")
        b = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}q> ?y }}")
        assert a["hash"] != b["hash"]
        assert a["constants"] == 0

    def test_rdf_type_class_stays_concrete(self):
        a = self.lift(f"SELECT ?x WHERE {{ ?x a <{UB}FullProfessor> }}")
        b = self.lift(f"SELECT ?x WHERE {{ ?x a <{UB}Lecturer> }}")
        assert a["hash"] != b["hash"]
        assert a["constants"] == 0

    def test_repeated_constant_shares_placeholder(self):
        lifted = self.lift(
            f"SELECT ?x ?y WHERE {{ ?x <{EX}p> <{EX}o1> . ?y <{EX}q> <{EX}o1> }}"
        )
        assert lifted["constants"] == 1
        other = self.lift(
            f"SELECT ?x ?y WHERE {{ ?x <{EX}p> <{EX}o1> . ?y <{EX}q> <{EX}o2> }}"
        )
        assert lifted["hash"] != other["hash"]  # sharing is structural

    def test_filter_constants_lift(self):
        a = self.lift(
            f'SELECT ?x WHERE {{ ?x <{EX}name> ?n FILTER (?n = "alice") }}'
        )
        b = self.lift(
            f'SELECT ?x WHERE {{ ?x <{EX}name> ?n FILTER (?n = "bob") }}'
        )
        assert a["hash"] == b["hash"]

    def test_limit_offset_are_parameters(self):
        a = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }} LIMIT 10")
        b = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }} LIMIT 500 OFFSET 20")
        unpaged = self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}")
        # Different page sizes fold; paged vs unpaged is structural.
        assert a["hash"] != b["hash"]  # OFFSET presence is structure
        assert (
            self.lift(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }} LIMIT 99")["hash"]
            == a["hash"]
        )
        assert a["hash"] != unpaged["hash"]

    def test_unliftable_input_returns_none(self):
        assert lift_template("not a parsed query") is None
        assert lift_template(None) is None

    def test_optional_union_filter_shapes_lift(self):
        lifted = self.lift(
            f"SELECT ?x ?m WHERE {{ "
            f"{{ ?x <{EX}p> <{EX}o1> }} UNION {{ ?x <{EX}q> <{EX}o2> }} "
            f"OPTIONAL {{ ?x <{EX}name> ?m }} }}"
        )
        assert lifted["constants"] == 2


class TestIsUpdateRequest:
    def test_queries_are_not_updates(self):
        assert not is_update_request("SELECT ?x WHERE { ?x ?p ?o }")
        assert not is_update_request("PREFIX ex: <http://x/> SELECT * WHERE { ?s ex:p ?o }")

    def test_updates_detected(self):
        assert is_update_request("INSERT DATA { <urn:a> <urn:b> <urn:c> }")
        assert is_update_request("DELETE DATA { <urn:a> <urn:b> <urn:c> }")
        assert is_update_request(
            "PREFIX ex: <http://x/> DELETE WHERE { ?s ex:p ?o }"
        )

    def test_unlexable_text_is_not_an_update(self):
        assert not is_update_request("INSERT DATA { broken")
        assert not is_update_request("@@@@")


# ----------------------------------------------------------------------
# the template registry
# ----------------------------------------------------------------------
class TestTemplateRegistry:
    def test_observe_accumulates(self):
        registry = TemplateRegistry()
        for i in range(10):
            registry.observe("t1", "SELECT …", seconds=0.010 * (i + 1), rows=i)
        entry = registry.get("t1")
        assert entry["count"] == 10
        assert entry["rows_total"] == sum(range(10))
        assert entry["latency_ms"]["p50"] == pytest.approx(60.0, rel=0.2)
        assert entry["latency_ms"]["p99"] >= entry["latency_ms"]["p50"]

    def test_counters_aggregate(self):
        registry = TemplateRegistry()
        registry.observe("t1", "q", 0.01, 1, {"rows_materialized": 5})
        registry.observe("t1", "q", 0.01, 1, {"rows_materialized": 7, "hash_joins": 1})
        entry = registry.get("t1")
        assert entry["counters"] == {"rows_materialized": 12, "hash_joins": 1}

    def test_bounded_lru_eviction(self):
        registry = TemplateRegistry(max_templates=4)
        for i in range(8):
            registry.observe(f"t{i}", "q", 0.001)
        assert len(registry) == 4
        assert registry.evicted == 4
        assert registry.get("t0") is None
        assert registry.get("t7") is not None
        # A re-observed template moves to the warm end.
        registry.observe("t4", "q", 0.001)
        registry.observe("t8", "q", 0.001)
        assert registry.get("t4") is not None

    def test_snapshot_busiest_first_and_limit(self):
        registry = TemplateRegistry()
        for _ in range(3):
            registry.observe("busy", "q1", 0.001)
        registry.observe("quiet", "q2", 0.001)
        snapshot = registry.snapshot()
        assert [e["template"] for e in snapshot["templates"]] == ["busy", "quiet"]
        assert snapshot["tracked"] == 2
        limited = registry.snapshot(limit=1)
        assert [e["template"] for e in limited["templates"]] == ["busy"]

    def test_none_digest_ignored(self):
        registry = TemplateRegistry()
        registry.observe(None, None, 0.001)
        assert len(registry) == 0


# ----------------------------------------------------------------------
# the slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_entries_are_jsonl(self, tmp_path):
        log = SlowQueryLog(str(tmp_path / "slow.jsonl"))
        log.record(
            "slow", "req-1", "SELECT 1", 12.5,
            rows=3, template="abcd", counters={"hash_joins": 1},
            trace={"name": "query", "ms": 12.0},
        )
        log.record("timeout", None, "SELECT 2", 1000.0)
        lines = (tmp_path / "slow.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["reason"] == "slow"
        assert first["request_id"] == "req-1"
        assert first["template"] == "abcd"
        assert first["trace"]["name"] == "query"
        assert json.loads(lines[1])["reason"] == "timeout"

    def test_compaction_keeps_newest(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), max_entries=5)
        for i in range(13):  # crosses the 2×max_entries threshold
            log.record("slow", f"r{i}", "q", float(i))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) <= 10
        assert lines[-1]["request_id"] == "r12"
        # Compaction kept a suffix: the oldest lines are gone.
        assert all(int(entry["request_id"][1:]) >= 3 for entry in lines)

    def test_unwritable_path_never_raises(self):
        log = SlowQueryLog("/nonexistent-dir/slow.jsonl")
        log.record("slow", "r", "q", 1.0)  # silently dropped


# ----------------------------------------------------------------------
# engine-level tracing
# ----------------------------------------------------------------------
class TestEngineTracing:
    def _traced(self, engine, query, **kwargs):
        tracer = obs_trace.arm(obs_trace.Tracer("query"))
        try:
            result = engine.execute(query, **kwargs)
        finally:
            tree = tracer.finish()
            obs_trace.disarm()
        return result, tree

    @pytest.mark.parametrize("engine_name", ["wco", "hashjoin"])
    @pytest.mark.parametrize("sorted_runs", [True, False])
    @pytest.mark.parametrize("kernels", [True, False])
    def test_span_tree_across_configs(
        self, small_store, engine_name, sorted_runs, kernels
    ):
        engine = SparqlUOEngine(
            small_store,
            options=EngineOptions(
                bgp_engine=engine_name, sorted_runs=sorted_runs, kernels=kernels
            ),
        )
        query = (
            f"SELECT ?x ?n WHERE {{ ?x <{EX}p> <{EX}o0> . ?x <{EX}name> ?n "
            f'FILTER (?n != "n1") }}'
        )
        plain = engine.execute(query)
        traced, tree = self._traced(engine, query)
        assert traced.solutions == plain.solutions  # tracing is transparent
        assert_well_formed(tree)
        names = span_names(tree)
        assert "scan" in names and "decode" in names
        assert tree["meta"]["generation"] == small_store.generation
        assert tree["meta"]["template"] == traced.template["hash"]

    def test_cold_prepare_spans(self, small_store):
        engine = SparqlUOEngine(small_store, bgp_engine="hashjoin")
        _, tree = self._traced(engine, f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}")
        names = span_names(tree)
        assert {"parse", "plan", "transform"} <= set(names)
        assert tree["meta"]["plan_cache"] == "miss"
        # A second run hits the plan cache: no parse/plan spans.
        _, warm = self._traced(engine, f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}")
        assert "parse" not in span_names(warm)
        assert warm["meta"]["plan_cache"] == "hit"

    def test_limit_early_exit_tree_well_formed(self, small_store):
        for engine_name in ("wco", "hashjoin"):
            engine = SparqlUOEngine(small_store, bgp_engine=engine_name)
            result, tree = self._traced(
                engine, f"SELECT ?x ?n WHERE {{ ?x <{EX}name> ?n }} LIMIT 2"
            )
            assert len(result) == 2
            assert_well_formed(tree)
            assert find_span(tree, "scan") is not None

    def test_timeout_partial_trace_marked(self, small_store):
        engine = SparqlUOEngine(small_store, bgp_engine="hashjoin")
        tracer = obs_trace.arm(obs_trace.Tracer("query"))
        try:
            with pytest.raises(QueryTimeoutError):
                engine.execute(QUERY_SLOW, timeout=0.02)
        finally:
            tree = tracer.finish(aborted="timeout")
            obs_trace.disarm()
        assert_well_formed(tree)  # every span closed despite the abort
        assert tree["aborted"] == "timeout"

    def test_group_fold_span(self, small_store):
        engine = SparqlUOEngine(small_store, bgp_engine="hashjoin")
        _, tree = self._traced(
            engine,
            f"SELECT ?o (COUNT(?x) AS ?n) WHERE {{ ?x <{EX}p> ?o }} GROUP BY ?o",
        )
        fold = find_span(tree, "group_fold")
        assert fold is not None
        assert fold["meta"]["groups"] == 3

    def test_filter_kernel_span(self, small_store):
        engine = SparqlUOEngine(
            small_store, options=EngineOptions(bgp_engine="hashjoin", kernels=True)
        )
        # A group-level filter over two patterns runs through
        # CompiledFilter.apply, which records the kernel span.
        _, tree = self._traced(
            engine,
            f"SELECT ?x ?n WHERE {{ "
            f"{{ ?x <{EX}name> ?n }} "
            f'FILTER (?n = "n3") }}',
        )
        assert find_span(tree, "filter_kernel") is not None or find_span(
            tree, "filter"
        ) is not None

    def test_update_spans(self, tmp_path):
        store = TripleStore.from_dataset(_small_dataset())
        engine = SparqlUOEngine(store)
        tracer = obs_trace.arm(obs_trace.Tracer("query"))
        try:
            result = engine.update(
                f"INSERT DATA {{ <{EX}new> <{EX}p> <{EX}o9> }}"
            )
        finally:
            tree = tracer.finish()
            obs_trace.disarm()
        assert result.added == 1
        assert_well_formed(tree)
        apply_span = find_span(tree, "apply")
        assert apply_span["meta"]["added"] == 1
        assert apply_span["meta"]["generation"] == store.generation

    def test_query_result_carries_template(self, small_store):
        engine = SparqlUOEngine(small_store, bgp_engine="wco")
        a = engine.execute(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o0> }}")
        b = engine.execute(f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o1> }}")
        assert a.template is not None
        assert a.template["hash"] == b.template["hash"]


# ----------------------------------------------------------------------
# CLI activation
# ----------------------------------------------------------------------
class TestCliTrace:
    @pytest.fixture
    def data_file(self, tmp_path):
        path = tmp_path / "data.nt"
        dump_ntriples(_small_dataset(), str(path))
        return str(path)

    def run(self, argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_trace_tree_printed(self, data_file):
        code, output = self.run(
            ["query", data_file, f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o0> }}", "--trace"]
        )
        assert code == 0
        assert "# trace:" in output
        assert re.search(r"query \(\d+\.\d+ ms\)", output)
        assert "scan" in output

    def test_trace_json(self, data_file, capsys):
        code, output = self.run(
            [
                "query", data_file,
                f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o0> }}",
                "--trace=json", "--format", "json",
            ]
        )
        assert code == 0
        # Machine-readable payload stays clean: the trace goes to stderr.
        document = json.loads(output)
        assert "results" in document
        tree = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert_well_formed(tree)

    def test_cli_update_stats(self, data_file):
        code, output = self.run(
            [
                "query", data_file,
                f"INSERT DATA {{ <{EX}zz> <{EX}p> <{EX}o0> }}",
                "--stats", "--trace",
            ]
        )
        assert code == 0
        assert "update OK: 1 added, 0 removed" in output
        assert "delta depth" in output
        assert "apply" in output  # the trace shows the apply span

    def test_cli_update_noop(self, data_file):
        code, output = self.run(
            ["query", data_file, f"DELETE DATA {{ <{EX}absent> <{EX}p> <{EX}o0> }}"]
        )
        assert code == 0
        assert "update OK: 0 added, 0 removed" in output

    def test_disarmed_after_cli_run(self, data_file):
        self.run(
            ["query", data_file, f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}o0> }}", "--trace"]
        )
        assert obs_trace.ACTIVE is None


# ----------------------------------------------------------------------
# HTTP propagation: one server, the whole observability loop
# ----------------------------------------------------------------------
def http_get(url, headers=None, timeout=60):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def http_post(url, body, content_type, headers=None, timeout=60):
    all_headers = {"Content-Type": content_type}
    all_headers.update(headers or {})
    request = urllib.request.Request(url, data=body, headers=all_headers)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


class TestServerObservability:
    QUERY = f"SELECT ?x ?y WHERE {{ ?x <{UB}headOf> ?y }}"

    @pytest.fixture(scope="class")
    def obs_server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        snap = tmp / "lubm.snap"
        TripleStore.from_dataset(generate_lubm(universities=1, seed=42)).save(str(snap))
        log_path = tmp / "slow.jsonl"
        config = ServerConfig(
            data=str(snap),
            port=0,
            workers=2,
            timeout=2.0,
            cache_entries=32,
            trace_sample=1.0,  # every request sampled into the log
            slow_query_ms=0.0,
            slow_query_log=str(log_path),
        )
        instance = SparqlServer(config)
        instance.start()
        yield instance, str(log_path)
        instance.shutdown()

    def get(self, server, query, headers=None):
        url = server.url + "/sparql?" + urllib.parse.urlencode({"query": query})
        return http_get(url, headers=headers)

    def test_trace_header_stitches_worker_under_request(self, obs_server):
        server, _ = obs_server
        status, headers, body = self.get(
            server,
            self.QUERY + " #trace-miss",
            headers={"X-Repro-Trace": "1", "X-Request-Id": "trace-req-1"},
        )
        assert status == 200
        assert headers["X-Repro-Request-Id"] == "trace-req-1"
        repro = json.loads(body)["extensions"]["repro"]
        assert repro["request_id"] == "trace-req-1"
        assert repro["cache"] == "miss"
        assert repro["exec_counters"]["rows_materialized"] > 0
        tree = repro["trace"]
        assert_well_formed(tree)
        assert tree["meta"]["request_id"] == "trace-req-1"
        pool_span = find_span(tree, "pool")
        assert pool_span is not None
        worker = find_span(pool_span, "worker")
        assert worker is not None
        assert worker["meta"]["request_id"] == "trace-req-1"
        assert find_span(worker, "scan") is not None
        assert find_span(worker, "serialize") is not None
        # Per-operator child timings nest inside the reported total.
        child_ms = sum(c["ms"] for c in tree.get("children", ()))
        assert child_ms <= tree["ms"] * 1.05

    def test_cache_hit_returns_recorded_counters(self, obs_server):
        server, _ = obs_server
        query = self.QUERY + " #hit-case"
        self.get(server, query)  # miss populates the cache
        status, headers, body = self.get(
            server, query, headers={"X-Repro-Trace": "1"}
        )
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        repro = json.loads(body)["extensions"]["repro"]
        assert repro["cache"] == "hit"
        # The bugfix: hot queries report the counters recorded when the
        # entry was computed instead of silently omitting them.
        assert repro["exec_counters"]["rows_materialized"] > 0
        assert find_span(repro["trace"], "cache_lookup") is not None

    def test_request_id_minted_when_invalid(self, obs_server):
        server, _ = obs_server
        _, headers, _ = self.get(
            server, self.QUERY, headers={"X-Request-Id": "bad id with junk!"}
        )
        minted = headers["X-Repro-Request-Id"]
        assert minted != "bad id with junk!"
        assert re.fullmatch(r"[A-Za-z0-9._-]{1,64}", minted)

    def test_generation_header_on_all_responses(self, obs_server):
        server, _ = obs_server
        for path in ("/healthz", "/metrics", "/debug/templates"):
            _, headers, _ = http_get(server.url + path)
            assert headers["X-Repro-Generation"] == str(server.generation), path

    def test_update_reports_write_depth_and_generation(self, obs_server):
        server, _ = obs_server
        before = server.generation
        status, headers, body = http_post(
            server.url + "/update",
            f"INSERT DATA {{ <{EX}obs1> <{EX}p> <{EX}o1> }}".encode(),
            "application/sparql-update",
        )
        assert status == 200
        document = json.loads(body)
        assert document["added"] == 1 and document["removed"] == 0
        assert document["generation"] == before + 1
        assert document["pending_delta"]["adds"] >= 1
        assert document["replay_log"] >= 1
        assert document["request_id"]
        assert headers["X-Repro-Generation"] == str(before + 1)

    def test_debug_templates_accumulates_query_family(self, obs_server):
        server, _ = obs_server
        # One shape, many constants: the production replay pattern.
        for i in range(4):
            self.get(
                server,
                f"SELECT ?p WHERE {{ ?s ?p <{UB.rstrip('#')}#Course{i}> }}",
            )
        status, _, body = http_get(server.url + "/debug/templates")
        assert status == 200
        document = json.loads(body)
        assert document["tracked"] >= 1
        by_count = document["templates"]
        family = [
            e for e in by_count if e["count"] >= 4 and "?__c0" in e["text"]
        ]
        assert family, "the replayed family should share one lifted template"
        entry = family[0]
        assert entry["latency_ms"]["p50"] > 0
        assert entry["latency_ms"]["p99"] >= entry["latency_ms"]["p50"]
        assert entry["counters"]
        # Busiest-first ordering and the limit parameter.
        counts = [e["count"] for e in by_count]
        assert counts == sorted(counts, reverse=True)
        _, _, limited = http_get(server.url + "/debug/templates?limit=1")
        assert len(json.loads(limited)["templates"]) == 1

    def test_slow_query_log_fills(self, obs_server):
        server, log_path = obs_server
        self.get(server, self.QUERY + " #slowlog-case")
        entries = [
            json.loads(line)
            for line in open(log_path, encoding="utf-8")
            if line.strip()
        ]
        assert entries
        sampled = [e for e in entries if e["reason"] == "sample"]
        assert sampled, "trace_sample=1.0 must log every query"
        entry = sampled[-1]
        assert entry["request_id"]
        assert entry["template"]
        assert entry["total_ms"] > 0
        assert "query" in entry

    def test_timeout_logged_and_trace_partial(self, obs_server):
        server, log_path = obs_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server, QUERY_SLOW, headers={"X-Repro-Trace": "1"})
        assert excinfo.value.code == 504
        document = json.loads(excinfo.value.read())
        assert "error" in document
        tree = document["extensions"]["repro"]["trace"]
        assert_well_formed(tree)
        worker = find_span(tree, "worker")
        assert worker is not None and worker["aborted"] == "timeout"
        entries = [
            json.loads(line)
            for line in open(log_path, encoding="utf-8")
            if line.strip()
        ]
        timeouts = [e for e in entries if e["reason"] == "timeout"]
        assert timeouts and timeouts[-1]["trace"] is not None

    def test_live_metrics_exposition_lints(self, obs_server):
        server, _ = obs_server
        self.get(server, self.QUERY + " #metrics-traffic")
        _, _, body = http_get(server.url + "/metrics")
        text = body.decode("utf-8")
        errors, series = lint_prometheus(text)
        assert not errors, "\n".join(errors)
        assert any(name == "repro_query_seconds_bucket" for name, _ in series)
        check_histogram_monotone(text, "repro_query_seconds")

    def test_stats_dump_writes_registry(self, obs_server, tmp_path):
        server, _ = obs_server
        self.get(server, self.QUERY + " #dump-case")
        destination = tmp_path / "stats.json"
        server.dump_stats(str(destination))
        document = json.loads(destination.read_text())
        assert document["templates"]
        assert document["generation"] == server.generation


# ----------------------------------------------------------------------
# Prometheus text-format lint
# ----------------------------------------------------------------------
def lint_prometheus(text: str):
    """Grammar lint: HELP/TYPE per family, unique series, sane buckets."""
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
    )
    helped, typed, seen_series = set(), set(), set()
    families = {}
    errors = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            typed.add(parts[2])
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            errors.append(f"unexpected comment: {line!r}")
            continue
        match = sample_re.match(line)
        if match is None:
            errors.append(f"unparseable sample: {line!r}")
            continue
        name = match.group("name")
        series = (name, match.group("labels") or "")
        if series in seen_series:
            errors.append(f"duplicate series: {line!r}")
        seen_series.add(series)
        try:
            float(match.group("value"))
        except ValueError:
            errors.append(f"non-numeric value: {line!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and families.get(stripped) in ("histogram", "summary"):
                family = stripped
                break
        if family not in typed:
            errors.append(f"sample before TYPE: {line!r}")
        if family not in helped:
            errors.append(f"sample before HELP: {line!r}")
    return errors, seen_series


def check_histogram_monotone(text: str, family: str):
    """Each label set's buckets must be cumulative and end at +Inf=count."""
    buckets = {}
    counts = {}
    for line in text.splitlines():
        bucket = re.match(
            rf'^{family}_bucket\{{(?P<labels>.*?),?le="(?P<le>[^"]+)"\}} (?P<v>\d+)$',
            line,
        )
        if bucket:
            key = bucket.group("labels")
            le = bucket.group("le")
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append((bound, int(bucket.group("v"))))
        count = re.match(rf"^{family}_count\{{(?P<labels>[^}}]*)\}} (?P<v>\d+)$", line)
        if count:
            counts[count.group("labels")] = int(count.group("v"))
    assert buckets, f"no {family}_bucket series found"
    for key, series in buckets.items():
        bounds = [bound for bound, _ in series]
        values = [value for _, value in series]
        assert bounds == sorted(bounds), f"{key}: bucket bounds out of order"
        assert bounds[-1] == float("inf"), f"{key}: missing +Inf bucket"
        assert values == sorted(values), f"{key}: non-monotone cumulative buckets"
        label_key = key.rstrip(",")
        assert values[-1] == counts[label_key], f"{key}: +Inf != count"


class TestPrometheusExposition:
    def test_full_exposition_lints(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.record_query("miss", 0.004, 10, 2.0, {"rows_materialized": 10})
        metrics.record_query("miss", 0.030, 5, 1.0)
        metrics.record_query("hit", 0.0005, 10, 2.0)
        metrics.record_query("stale", 0.0007, 1, 1.0)
        metrics.record_timeout()
        metrics.record_update(3, 1)
        metrics.record_shed()
        metrics.record_response(200)
        metrics.record_response(504)
        text = metrics.render(
            generation=3,
            pool_stats={"alive": 2, "target": 2},
            cache_stats={"entries": 1, "hits": 1, "misses": 2, "evictions": 0},
        )
        errors, series = lint_prometheus(text)
        assert not errors, "\n".join(errors)
        assert any(name == "repro_query_seconds_bucket" for name, _ in series)
        check_histogram_monotone(text, "repro_query_seconds")

    def test_histogram_buckets_count_observations(self):
        from repro.server.metrics import HISTOGRAM_BUCKETS, LatencySummary

        summary = LatencySummary()
        summary.observe(0.0009)  # first bucket (le=0.001)
        summary.observe(0.003)   # le=0.005
        summary.observe(99.0)    # beyond every bound: only +Inf sees it
        assert summary.buckets[0] == 1
        assert summary.buckets[HISTOGRAM_BUCKETS.index(0.005)] == 1
        assert sum(summary.buckets) == 2
        assert summary.count == 3
