"""Unit tests for the join-space metric JS (§7.1)."""

from repro.bgp import WCOJoinEngine
from repro.core import BETree, join_space
from repro.core.betree import BGPNode
from repro.core.evaluator import BGPBasedEvaluator, EvaluationTrace
from repro.sparql import parse_group


def evaluate_with_trace(store, text):
    tree = BETree.from_group(parse_group(text))
    trace = EvaluationTrace()
    BGPBasedEvaluator(WCOJoinEngine(store)).evaluate(tree, trace)
    return tree, trace


class TestRules:
    def test_single_bgp(self, university_store):
        tree, trace = evaluate_with_trace(
            university_store, "{ ?x <http://example.org/worksFor> ?d }"
        )
        assert join_space(tree, trace) == 12.0

    def test_join_multiplies(self, university_store):
        # Two disconnected BGPs: worksFor (12) × advisor (36).
        tree, trace = evaluate_with_trace(
            university_store,
            "{ ?x <http://example.org/worksFor> ?d . ?s <http://example.org/advisor> ?p }",
        )
        assert join_space(tree, trace) == 12.0 * 36.0

    def test_union_adds(self, university_store):
        tree, trace = evaluate_with_trace(
            university_store,
            "{ { ?x <http://example.org/worksFor> ?d } UNION { ?x <http://example.org/headOf> ?d } }",
        )
        assert join_space(tree, trace) == 12.0 + 3.0

    def test_optional_multiplies(self, university_store):
        tree, trace = evaluate_with_trace(
            university_store,
            "{ ?x <http://example.org/headOf> ?d OPTIONAL { ?x <http://example.org/teacherOf> ?c } }",
        )
        assert join_space(tree, trace) == 3.0 * 12.0

    def test_empty_bgp_counts_one(self, university_store):
        tree, trace = evaluate_with_trace(
            university_store, "{ ?x <http://example.org/headOf> ?d }"
        )
        tree.root.children.append(BGPNode([]))
        assert join_space(tree, trace) == 3.0

    def test_unevaluated_bgp_counts_zero(self, university_store):
        tree = BETree.from_group(
            parse_group("{ ?x <http://example.org/headOf> ?d }")
        )
        assert join_space(tree, EvaluationTrace()) == 0.0
