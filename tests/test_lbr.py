"""Unit and property tests for the LBR baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines import LBREngine, build_gosn
from repro.sparql import (
    SelectQuery,
    UnsupportedFeatureError,
    execute_query,
    parse_group,
    parse_query,
)
from repro.storage import TripleStore

from .strategies import datasets, optional_only_groups


class TestGoSN:
    def test_flat_query_single_supernode(self):
        gosn = build_gosn(parse_group("{ ?x ?p ?y . ?y ?q ?z }"))
        assert len(gosn.patterns) == 2 and not gosn.children

    def test_optional_becomes_child(self):
        gosn = build_gosn(parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z } }"))
        assert len(gosn.patterns) == 1
        assert len(gosn.children) == 1
        assert len(gosn.children[0].patterns) == 1

    def test_nested_optionals(self):
        gosn = build_gosn(
            parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z OPTIONAL { ?z ?r ?w } } }")
        )
        assert gosn.children[0].children[0].patterns

    def test_required_groups_flatten(self):
        gosn = build_gosn(
            parse_group("{ { ?x ?p ?y OPTIONAL { ?y ?q ?z } } { ?x ?r ?w } }")
        )
        assert len(gosn.patterns) == 2  # both required triples at the root
        assert len(gosn.children) == 1

    def test_union_unsupported(self):
        group = parse_group("{ { ?x ?p ?y } UNION { ?x ?q ?y } }")
        with pytest.raises(UnsupportedFeatureError):
            build_gosn(group)

    def test_counts(self):
        gosn = build_gosn(
            parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z } OPTIONAL { ?y ?r ?w } }")
        )
        assert gosn.descendant_count() == 3
        assert gosn.pattern_count() == 3

    def test_variables(self):
        gosn = build_gosn(parse_group("{ ?x <http://p/1> ?y OPTIONAL { ?y <http://p/2> ?z } }"))
        assert gosn.variables() == {"x", "y"}
        assert gosn.all_variables() == {"x", "y", "z"}


class TestExecution:
    def test_simple_optional(self, university_dataset, university_store):
        text = (
            "SELECT * WHERE { ?x <http://example.org/headOf> ?d "
            "OPTIONAL { ?x <http://example.org/teacherOf> ?c } }"
        )
        result = LBREngine(university_store).execute(text)
        expected = execute_query(parse_query(text), university_dataset)
        assert result.solutions == expected

    def test_nested_required_groups(self, university_dataset, university_store):
        text = (
            "SELECT * WHERE {"
            " { ?x <http://example.org/worksFor> ?d OPTIONAL { ?x <http://example.org/type> ?t } }"
            " { ?s <http://example.org/advisor> ?x OPTIONAL { ?s <http://example.org/takesCourse> ?c } } }"
        )
        result = LBREngine(university_store).execute(text)
        expected = execute_query(parse_query(text), university_dataset)
        assert result.solutions == expected

    def test_projection(self, university_store):
        text = (
            "SELECT ?x WHERE { ?x <http://example.org/headOf> ?d "
            "OPTIONAL { ?x <http://example.org/teacherOf> ?c } }"
        )
        result = LBREngine(university_store).execute(text)
        assert result.variables == ["x"]

    def test_reports_two_semijoin_passes(self, university_store):
        text = "SELECT * WHERE { ?x <http://example.org/headOf> ?d }"
        result = LBREngine(university_store).execute(text)
        assert result.semijoin_passes == 2

    def test_empty_result(self, university_store):
        text = "SELECT * WHERE { ?x <http://example.org/noSuchPredicate> ?d }"
        assert len(LBREngine(university_store).execute(text)) == 0


class TestPropertyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(datasets(), optional_only_groups())
    def test_lbr_matches_reference_on_optional_queries(self, dataset, group):
        store = TripleStore.from_dataset(dataset)
        expected = execute_query(SelectQuery(None, group), dataset)
        result = LBREngine(store).execute(SelectQuery(None, group))
        assert result.solutions == expected
