"""Unit tests for the statistics catalog."""

import pytest

from repro.storage import StoreStatistics, TripleIndexes


def build_stats(triples):
    idx = TripleIndexes()
    for t in triples:
        idx.insert(t)
    return StoreStatistics.from_indexes(idx)


class TestPredicateStatistics:
    def test_degrees(self):
        # predicate 1: subjects {0, 0, 4} → 2 distinct, objects {2, 3, 2} → 2.
        stats = build_stats([(0, 1, 2), (0, 1, 3), (4, 1, 2)])
        per = stats.for_predicate(1)
        assert per.triples == 3
        assert per.distinct_subjects == 2
        assert per.distinct_objects == 2
        assert per.average_out_degree == pytest.approx(1.5)
        assert per.average_in_degree == pytest.approx(1.5)

    def test_missing_predicate_is_zero(self):
        stats = build_stats([(0, 1, 2)])
        per = stats.for_predicate(99)
        assert per.triples == 0
        assert per.average_out_degree == 0.0
        assert per.average_in_degree == 0.0


class TestAverageSize:
    def test_directions(self):
        # 2 triples, 1 subject, 2 objects: out-degree 2, in-degree 1.
        stats = build_stats([(0, 1, 2), (0, 1, 3)])
        assert stats.average_size(1, "out") == pytest.approx(2.0)
        assert stats.average_size(1, "in") == pytest.approx(1.0)

    def test_invalid_direction(self):
        stats = build_stats([(0, 1, 2)])
        with pytest.raises(ValueError):
            stats.average_size(1, "sideways")

    def test_totals(self):
        stats = build_stats([(0, 1, 2), (0, 2, 2)])
        assert stats.total_triples == 2
        assert stats.predicate_count() == 2
