"""Unit tests for BE-tree construction, coalescing and conversion."""

import pytest

from repro.core import BETree, BGPNode, GroupNode, OptionalNode, UnionNode
from repro.core.betree import certain_variables, coalesce_siblings
from repro.rdf import IRI, TriplePattern, Variable
from repro.sparql import execute_query, parse_group, parse_query, SelectQuery

P = IRI("http://x/p")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestConstruction:
    def test_single_triple(self):
        tree = BETree.from_group(parse_group("{ ?x ?p ?y }"))
        (bgp,) = tree.root.children
        assert isinstance(bgp, BGPNode) and len(bgp.patterns) == 1

    def test_coalescing_adjacent_triples(self):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y . ?y <http://x/p> ?z }"))
        (bgp,) = tree.root.children
        assert len(bgp.patterns) == 2

    def test_uncoalescable_triples_stay_apart(self):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y . ?a <http://x/p> ?b }"))
        assert len(tree.root.children) == 2

    def test_union_node(self):
        tree = BETree.from_group(
            parse_group("{ { ?x ?p ?y } UNION { ?x ?q ?y } }")
        )
        (union,) = tree.root.children
        assert isinstance(union, UnionNode) and len(union.branches) == 2

    def test_optional_node(self):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y OPTIONAL { ?y <http://x/q> ?z } }"))
        assert isinstance(tree.root.children[1], OptionalNode)

    def test_figure2_coalesce_across_optional(self):
        """The paper's Figure 5: t1 and t6 coalesce around the OPTIONAL
        because t6's variables don't overlap the OPTIONAL body."""
        group = parse_group(
            """{
              ?x <http://x/link> <http://x/Pres> .
              { ?x <http://x/name> ?name } UNION { ?x <http://x/label> ?name }
              OPTIONAL { { ?x <http://x/same> ?same } UNION { ?same <http://x/same> ?x } }
              ?x <http://x/birth> ?birth .
            }"""
        )
        tree = BETree.from_group(group)
        first = tree.root.children[0]
        assert isinstance(first, BGPNode)
        assert len(first.patterns) == 2  # t1 + t6 coalesced
        # … and the BGP sits at t1's (leftmost) position.
        assert len(tree.root.children) == 3

    def test_unsafe_cross_optional_coalesce_blocked(self):
        """If the trailing triple shares a variable with the OPTIONAL
        body that is not certain beforehand, moving it would change
        semantics — construction must keep it after the OPTIONAL."""
        group = parse_group(
            """{
              ?x <http://x/p> ?y .
              OPTIONAL { ?x <http://x/q> ?s }
              ?x <http://x/r> ?s .
            }"""
        )
        tree = BETree.from_group(group)
        assert len(tree.root.children) == 3
        last = tree.root.children[2]
        assert isinstance(last, BGPNode) and len(last.patterns) == 1

    def test_nested_groups(self):
        tree = BETree.from_group(parse_group("{ { ?x ?p ?y . ?y ?q ?z } }"))
        (inner,) = tree.root.children
        assert isinstance(inner, GroupNode)


class TestSemanticsPreservation:
    """BE-tree construction itself must not change query results."""

    @pytest.mark.parametrize(
        "text",
        [
            "{ ?x <http://x/p> ?y . OPTIONAL { ?y <http://x/q> ?z } ?x <http://x/r> ?w }",
            "{ ?x <http://x/p> ?y . OPTIONAL { ?x <http://x/q> ?s } ?x <http://x/r> ?s }",
            "{ { ?x <http://x/p> ?y } UNION { ?x <http://x/q> ?y } ?x <http://x/r> ?z }",
        ],
    )
    def test_to_group_preserves_results(self, text, university_dataset):
        group = parse_group(text)
        tree = BETree.from_group(group)
        original = execute_query(SelectQuery(None, group), university_dataset)
        rebuilt = execute_query(SelectQuery(None, tree.to_group()), university_dataset)
        assert original == rebuilt


class TestHelpers:
    def test_clone_preserves_node_ids_and_structure(self):
        tree = BETree.from_group(parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z } }"))
        copy = tree.clone()
        originals = {n.node_id for n in tree.iter_nodes()}
        clones = {n.node_id for n in copy.iter_nodes()}
        assert originals == clones
        # Mutating the clone leaves the original alone.
        copy.root.children.clear()
        assert tree.root.children

    def test_bgp_nodes_listing(self):
        tree = BETree.from_group(
            parse_group("{ ?x ?p ?y { ?a ?p ?b } UNION { ?a ?q ?b } }")
        )
        assert len(tree.bgp_nodes()) == 3

    def test_variables(self):
        tree = BETree.from_group(parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z } }"))
        assert tree.root.variables() == {"x", "p", "y", "q", "z"}

    def test_pretty_contains_node_labels(self):
        tree = BETree.from_group(parse_group("{ ?x <http://x/p> ?y OPTIONAL { ?y <http://x/q> ?z } }"))
        text = tree.pretty()
        assert "GROUP" in text and "OPTIONAL" in text and "BGP" in text

    def test_union_requires_two_branches(self):
        with pytest.raises(ValueError):
            UnionNode([GroupNode()])

    def test_optional_requires_group(self):
        with pytest.raises(TypeError):
            OptionalNode(BGPNode())


class TestCertainVariables:
    def test_bgp_vars_are_certain(self):
        group = BETree.from_group(parse_group("{ ?x <http://x/p> ?y }")).root
        assert certain_variables(group.children, 1) == {"x", "y"}

    def test_optional_vars_not_certain(self):
        group = BETree.from_group(
            parse_group("{ ?x <http://x/p> ?y OPTIONAL { ?y <http://x/q> ?z } }")
        ).root
        assert certain_variables(group.children, 2) == {"x", "y"}

    def test_union_certain_is_branch_intersection(self):
        group = BETree.from_group(
            parse_group(
                "{ { ?x <http://x/p> ?y } UNION { ?x <http://x/q> ?z } }"
            )
        ).root
        assert certain_variables(group.children, 1) == {"x"}
