"""Unit tests for the LUBM-like generator."""

import pytest

from repro.datasets import LUBMGenerator, generate_lubm
from repro.rdf import IRI, Literal, TriplePattern, UB, Variable


@pytest.fixture(scope="module")
def lubm():
    return generate_lubm(universities=1)


def has_triple(dataset, s, p, o) -> bool:
    return any(True for _ in dataset.match(TriplePattern(s, p, o)))


class TestStructure:
    def test_named_students_exist(self, lubm):
        """The benchmark queries address these individuals by IRI/email;
        they must exist at every scale (DESIGN.md guarantee 1)."""
        x = Variable("x")
        for dept, student in ((0, 91), (1, 363), (0, 356), (1, 256), (12, 309)):
            iri = IRI(
                f"http://www.Department{dept}.University0.edu/UndergraduateStudent{student}"
            )
            assert has_triple(lubm, iri, UB.memberOf, x), (dept, student)

    def test_email_format_matches_queries(self, lubm):
        student = IRI("http://www.Department0.University0.edu/UndergraduateStudent91")
        email = Literal("UndergraduateStudent91@Department0.University0.edu")
        assert has_triple(lubm, student, UB.emailAddress, email)

    def test_university0_has_15_departments(self, lubm):
        dept12 = IRI("http://www.Department12.University0.edu")
        assert has_triple(lubm, dept12, UB.subOrganizationOf, Variable("u"))

    def test_departments_have_heads_and_names(self, lubm):
        dept = IRI("http://www.Department0.University0.edu")
        assert has_triple(lubm, Variable("p"), UB.headOf, dept)
        assert has_triple(lubm, dept, UB.name, Variable("n"))

    def test_research_groups_are_suborganizations(self, lubm):
        group = IRI("http://www.Department0.University0.edu/ResearchGroup0")
        dept = IRI("http://www.Department0.University0.edu")
        assert has_triple(lubm, group, UB.subOrganizationOf, dept)

    def test_grad_publications_coauthored_with_advisor(self, lubm):
        """q2.2/q2.3 join publications on student AND professor author."""
        pub = Variable("pub")
        st = Variable("st")
        prof = Variable("prof")
        found = False
        for triple in lubm.match(TriplePattern(pub, UB.publicationAuthor, st)):
            authors = [
                t.object for t in lubm.match(
                    TriplePattern(triple.subject, UB.publicationAuthor, Variable("a"))
                )
            ]
            if len(authors) >= 2:
                found = True
                break
        assert found

    def test_predicate_inventory(self, lubm):
        predicates = {p.value.rsplit("#", 1)[-1] for p in lubm.predicates()}
        for needed in (
            "headOf", "worksFor", "undergraduateDegreeFrom", "doctoralDegreeFrom",
            "publicationAuthor", "memberOf", "name", "emailAddress", "teacherOf",
            "takesCourse", "teachingAssistantOf", "subOrganizationOf", "advisor",
            "researchInterest", "telephone",
        ):
            assert needed in predicates, needed


class TestScaling:
    def test_deterministic(self):
        a = generate_lubm(universities=1, seed=1)
        b = generate_lubm(universities=1, seed=1)
        assert set(a) == set(b)

    def test_seed_changes_data(self):
        a = generate_lubm(universities=1, seed=1)
        b = generate_lubm(universities=1, seed=2)
        assert set(a) != set(b)

    def test_roughly_linear_scaling(self):
        # University0 is fixed-size; each further university adds a
        # roughly constant volume, so growth in the scale knob is linear.
        two = len(generate_lubm(universities=2))
        four = len(generate_lubm(universities=4))
        six = len(generate_lubm(universities=6))
        first_increment = four - two
        second_increment = six - four
        assert first_increment > 0
        assert second_increment == pytest.approx(first_increment, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LUBMGenerator(universities=0)
        with pytest.raises(ValueError):
            LUBMGenerator(undergrads_large=100)  # must cover student 363

    def test_statistics_shape(self, lubm):
        stats = lubm.statistics()
        assert stats["triples"] > 10_000
        assert stats["predicates"] >= 15
