"""Both BGP engines against the reference semantics, plus candidates.

Every behavioural test runs over both engines via the parametrized
``engine`` fixture — the BGP-engine interface is the contract the whole
SPARQL-UO layer rests on (§4's architectural claim).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp import HashJoinEngine, WCOJoinEngine
from repro.rdf import Dataset, IRI, TriplePattern, Variable
from repro.sparql.bags import Bag, join as bag_join
from repro.sparql.semantics import evaluate_triple_pattern
from repro.storage import TripleStore

from .strategies import datasets, triple_patterns

EX = "http://x/"
P, Q, R = IRI(EX + "p"), IRI(EX + "q"), IRI(EX + "r")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def reference_bgp(patterns, dataset):
    """Definition 7 evaluation of a BGP: join of the pattern scans."""
    result = Bag.identity()
    for pattern in patterns:
        result = bag_join(result, evaluate_triple_pattern(pattern, dataset))
    return result


@pytest.fixture(scope="module")
def graph():
    d = Dataset()
    for i in range(12):
        s = IRI(EX + f"n{i}")
        d.add_spo(s, P, IRI(EX + f"n{(i + 1) % 12}"))
        if i % 2 == 0:
            d.add_spo(s, Q, IRI(EX + f"n{(i + 5) % 12}"))
        if i % 3 == 0:
            d.add_spo(s, R, s)
    return d


@pytest.fixture(scope="module")
def graph_store(graph):
    return TripleStore.from_dataset(graph)


@pytest.fixture(params=["wco", "hashjoin"])
def engine(request, graph_store):
    cls = WCOJoinEngine if request.param == "wco" else HashJoinEngine
    return cls(graph_store)


class TestAgainstReference:
    @pytest.mark.parametrize(
        "patterns",
        [
            [TriplePattern(X, P, Y)],
            [TriplePattern(X, P, Y), TriplePattern(Y, P, Z)],
            [TriplePattern(X, P, Y), TriplePattern(Y, Q, Z), TriplePattern(Z, P, X)],
            [TriplePattern(X, P, Y), TriplePattern(Z, Q, X)],
            [TriplePattern(X, R, X)],  # repeated variable
            [TriplePattern(X, Variable("pred"), Y)],  # predicate variable
            [TriplePattern(X, P, Y), TriplePattern(Z, R, Z)],  # cartesian
        ],
        ids=["single", "chain", "cycle", "reverse", "selfloop", "predvar", "cartesian"],
    )
    def test_matches_reference(self, engine, graph, patterns):
        expected = reference_bgp(patterns, graph)
        assert engine.decode_bag(engine.evaluate(patterns)) == expected

    def test_empty_bgp_is_identity(self, engine):
        assert engine.evaluate([]) == Bag.identity()

    def test_ground_pattern_present(self, engine, graph_store):
        pattern = TriplePattern(IRI(EX + "n0"), P, IRI(EX + "n1"))
        assert engine.evaluate([pattern]) == Bag.identity()

    def test_ground_pattern_absent(self, engine):
        pattern = TriplePattern(IRI(EX + "n0"), P, IRI(EX + "n3"))
        assert len(engine.evaluate([pattern])) == 0

    def test_unknown_constant_empty(self, engine):
        pattern = TriplePattern(IRI(EX + "nowhere"), P, X)
        assert len(engine.evaluate([pattern])) == 0

    def test_joined_with_unknown_constant_empty(self, engine):
        patterns = [TriplePattern(X, P, Y), TriplePattern(Y, P, IRI(EX + "nowhere"))]
        assert len(engine.evaluate(patterns)) == 0


class TestCandidates:
    def test_candidates_restrict_results(self, engine, graph_store):
        n0 = graph_store.lookup(IRI(EX + "n0"))
        patterns = [TriplePattern(X, P, Y)]
        full = engine.evaluate(patterns)
        restricted = engine.evaluate(patterns, {"x": {n0}})
        assert restricted == Bag([m for m in full if m["x"] == n0])

    def test_candidates_equal_filtered_full_eval(self, engine, graph_store):
        ids = {graph_store.lookup(IRI(EX + f"n{i}")) for i in (0, 2, 4)}
        patterns = [TriplePattern(X, P, Y), TriplePattern(X, Q, Z)]
        full = engine.evaluate(patterns)
        restricted = engine.evaluate(patterns, {"x": ids})
        assert restricted == Bag([m for m in full if m["x"] in ids])

    def test_candidates_on_two_variables(self, engine, graph_store):
        n0 = graph_store.lookup(IRI(EX + "n0"))
        n1 = graph_store.lookup(IRI(EX + "n1"))
        patterns = [TriplePattern(X, P, Y)]
        restricted = engine.evaluate(patterns, {"x": {n0}, "y": {n1}})
        assert restricted == Bag([{"x": n0, "y": n1}])

    def test_empty_candidate_set_gives_empty(self, engine):
        patterns = [TriplePattern(X, P, Y)]
        assert len(engine.evaluate(patterns, {"x": set()})) == 0

    def test_irrelevant_candidates_ignored(self, engine):
        patterns = [TriplePattern(X, P, Y)]
        full = engine.evaluate(patterns)
        assert engine.evaluate(patterns, {"unused": {1, 2}}) == full

    def test_candidate_driven_scan_pins_repeated_predicate_variable(self):
        """A driver variable repeated at the predicate position (?x ?x ?o)
        must be pinned in the candidate-driven probe too — leaving it
        free would match triples whose predicate differs from the
        candidate subject."""
        d = Dataset()
        a, b, q = IRI(EX + "a"), IRI(EX + "b"), IRI(EX + "qq")
        d.add_spo(a, P, b)  # subject != predicate: must never match ?x ?x ?o
        d.add_spo(q, q, b)  # subject == predicate
        store = TripleStore.from_dataset(d)
        pattern = [TriplePattern(X, Variable("x"), Y)]
        for cls in (WCOJoinEngine, HashJoinEngine):
            engine = cls(store)
            full = engine.evaluate(pattern)
            assert full == Bag([{"x": store.lookup(q), "y": store.lookup(b)}])
            # Candidate sets small enough to drive the scan:
            assert engine.evaluate(pattern, {"x": {store.lookup(a)}}) == Bag()
            assert engine.evaluate(pattern, {"x": {store.lookup(q)}}) == full


class TestEstimates:
    def test_estimate_positive_for_nonempty(self, engine):
        estimate = engine.estimate([TriplePattern(X, P, Y)])
        assert estimate.cost > 0
        assert estimate.cardinality == 12.0  # exact for single patterns

    def test_estimate_empty_bgp(self, engine):
        estimate = engine.estimate([])
        assert estimate.cost == 0.0 and estimate.cardinality == 1.0

    def test_estimate_multi_pattern_runs(self, engine):
        estimate = engine.estimate(
            [TriplePattern(X, P, Y), TriplePattern(Y, Q, Z)]
        )
        assert estimate.cost >= 0 and estimate.cardinality >= 1.0


class TestDecodeHelpers:
    def test_decode_bag(self, engine, graph_store):
        n0 = graph_store.lookup(IRI(EX + "n0"))
        decoded = engine.decode_bag(Bag([{"x": n0}]))
        assert decoded == Bag([{"x": IRI(EX + "n0")}])

    def test_encode_candidates_from_bag(self, engine):
        bag = Bag([{"x": 1}, {"x": 2, "y": 3}])
        cands = engine.encode_candidates_from_bag(bag, ["x", "y", "z"])
        assert cands == {"x": {1, 2}, "y": {3}}


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(datasets(), st.lists(triple_patterns(), min_size=1, max_size=3))
    def test_engines_match_reference_on_random_bgps(self, dataset, patterns):
        store = TripleStore.from_dataset(dataset)
        expected = reference_bgp(patterns, dataset)
        for cls in (WCOJoinEngine, HashJoinEngine):
            engine = cls(store)
            assert engine.decode_bag(engine.evaluate(patterns)) == expected

    @settings(max_examples=30, deadline=None)
    @given(datasets(), st.lists(triple_patterns(), min_size=1, max_size=2))
    def test_engines_agree_with_each_other_under_candidates(self, dataset, patterns):
        store = TripleStore.from_dataset(dataset)
        wco, hashjoin = WCOJoinEngine(store), HashJoinEngine(store)
        # Use all subject ids of the store as a candidate set for 'v0'.
        ids = {store.dictionary.lookup(t.subject) for t in dataset}
        ids.discard(None)
        candidates = {"v0": ids} if ids else None
        assert wco.evaluate(patterns, candidates) == hashjoin.evaluate(patterns, candidates)
