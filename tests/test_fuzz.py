"""Fuzz tests: malformed input must fail with *our* exceptions.

A production front end's contract is that arbitrary text produces
either a parse or a :class:`SparqlError` — never an AttributeError,
RecursionError or IndexError leaking from the internals.  Same for the
N-Triples reader.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf.ntriples import NTriplesParseError, parse_ntriples_string
from repro.sparql import SparqlError, parse_query
from repro.sparql.tokenizer import tokenize


# Alphabet biased toward SPARQL-significant characters so the fuzzer
# spends its budget near the grammar instead of deep inside literals.
_sparql_soup = st.text(
    alphabet=st.sampled_from(
        list("{}?<>.\"' \nSELECTWHEREUNIONOPTIONALabcxyz:/#@^123*$_-")
    ),
    max_size=120,
)


class TestParserRobustness:
    @settings(max_examples=300, deadline=None)
    @given(_sparql_soup)
    def test_parse_query_raises_only_sparql_errors(self, text):
        try:
            parse_query(text)
        except SparqlError:
            pass  # the documented failure mode

    @settings(max_examples=200, deadline=None)
    @given(_sparql_soup)
    def test_tokenizer_raises_only_sparql_errors(self, text):
        try:
            tokenize(text)
        except SparqlError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=200))
    def test_parser_survives_arbitrary_unicode(self, text):
        try:
            parse_query(text)
        except SparqlError:
            pass


class TestNTriplesRobustness:
    @settings(max_examples=200, deadline=None)
    @given(
        st.text(
            alphabet=st.sampled_from(list('<>"_:. \\naéb#^@0')),
            max_size=100,
        )
    )
    def test_ntriples_raises_only_parse_errors(self, text):
        try:
            list(parse_ntriples_string(text))
        except NTriplesParseError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=150))
    def test_ntriples_survives_arbitrary_unicode(self, text):
        try:
            list(parse_ntriples_string(text))
        except NTriplesParseError:
            pass
