"""Tests for the deterministic fault-injection framework.

Covers the spec grammar and trigger semantics of :mod:`repro.faults`
itself, then each *storage-layer* injection site end to end: torn vs
corrupt snapshot classification, atomic publishing (a failed write
never damages the previous file), quarantine-and-rebuild in the
dataset cache, and the worker pool's crash / OOM / pipe-error recovery
paths driven purely by injected faults.  Server-level chaos schedules
live in ``test_chaos.py``.
"""

from __future__ import annotations

import io
import pickle
import time

import pytest

from repro import faults
from repro.cli import main as cli_main
from repro.datasets.cache import cached_store, snapshot_path as cache_snapshot_path
from repro.datasets.lubm import generate_lubm
from repro.faults import FaultPlan, FaultSpecError, InjectedFaultError
from repro.server import ServerConfig
from repro.server.pool import WorkerPool
from repro.storage import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotTornError,
    TripleStore,
)
from repro.storage.snapshot import SnapshotReader, quarantine_snapshot

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
QUERY_HEADOF = f"SELECT ?x ?y WHERE {{ ?x <{UB}headOf> ?y }}"


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def snap(tmp_path_factory):
    path = tmp_path_factory.mktemp("faults") / "lubm.snap"
    TripleStore.from_dataset(generate_lubm(universities=1, seed=42)).save(str(path))
    return str(path)


# ----------------------------------------------------------------------
# spec parsing and trigger semantics
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_full_grammar(self):
        plan = FaultPlan(
            "snapshot.read_section:io_error@3;worker.exec:crash@0.1;"
            "worker.recv:delay=0.2@2+#seed=7"
        )
        assert plan.seed == 7
        rules = {rule.site: rule for rule in plan.rules()}
        assert rules["snapshot.read_section"].at == 3
        assert not rules["snapshot.read_section"].repeat
        assert rules["worker.exec"].probability == 0.1
        assert rules["worker.recv"].arg == 0.2
        assert rules["worker.recv"].repeat and rules["worker.recv"].at == 2

    def test_delay_defaults_its_argument(self):
        (rule,) = FaultPlan("worker.exec:delay").rules()
        assert rule.arg == 0.05
        assert rule.at is None and rule.probability is None  # "@*" default

    @pytest.mark.parametrize(
        "spec",
        [
            "nonsense.site:io_error",  # unknown site
            "worker.exec:frobnicate",  # unknown kind
            "worker.exec",  # no kind at all
            "worker.exec:crash@0",  # hit counts are 1-based
            "worker.exec:crash@1.5",  # probability out of (0,1)
            "worker.exec:crash@0.5+",  # '+' only composes with counts
            "worker.exec:crash@wat",  # unparseable trigger
            "worker.exec:delay=slow",  # unparseable argument
            "worker.exec:crash#tempo=3",  # unknown option
            "#seed=3",  # no rules
            "",  # empty spec
        ],
    )
    def test_rejected_specs(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan(spec)

    def test_nth_hit_fires_exactly_once(self):
        plan = FaultPlan("worker.exec:io_error@3")
        plan.fire("worker.exec")
        plan.fire("worker.exec")
        with pytest.raises(InjectedFaultError) as excinfo:
            plan.fire("worker.exec")
        assert excinfo.value.site == "worker.exec"
        plan.fire("worker.exec")  # the 4th hit passes again
        assert plan.counts() == {"worker.exec": 1}

    def test_from_nth_hit_onward(self):
        plan = FaultPlan("worker.exec:io_error@2+")
        plan.fire("worker.exec")
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                plan.fire("worker.exec")
        assert plan.counts() == {"worker.exec": 3}

    def test_probability_is_deterministic_per_seed(self):
        def schedule(spec):
            plan = FaultPlan(spec)
            fired = []
            for index in range(200):
                try:
                    plan.fire("worker.exec")
                except InjectedFaultError:
                    fired.append(index)
            return fired

        first = schedule("worker.exec:io_error@0.3#seed=7")
        assert first == schedule("worker.exec:io_error@0.3#seed=7")
        assert first != schedule("worker.exec:io_error@0.3#seed=8")
        assert 20 <= len(first) <= 120  # ~60 expected

    def test_injected_error_is_an_oserror(self):
        with pytest.raises(OSError):
            FaultPlan("cache.get:io_error").fire("cache.get")

    def test_oom_kind_raises_memoryerror(self):
        with pytest.raises(MemoryError):
            FaultPlan("worker.exec:oom").fire("worker.exec")

    def test_delay_kind_sleeps(self):
        plan = FaultPlan("worker.exec:delay=0.05")
        started = time.perf_counter()
        plan.fire("worker.exec")
        assert time.perf_counter() - started >= 0.04

    def test_unlisted_site_is_a_no_op(self):
        plan = FaultPlan("worker.exec:io_error")
        plan.fire("cache.get")  # no rule for the site: nothing happens
        assert plan.counts() == {}

    def test_plans_pickle_with_their_state(self):
        plan = FaultPlan("worker.exec:io_error@2;cache.get:io_error@0.5#seed=3")
        plan.fire("worker.exec")
        clone = pickle.loads(pickle.dumps(plan))
        # The clone resumes exactly where the original stood …
        with pytest.raises(InjectedFaultError):
            clone.fire("worker.exec")
        # … including the probabilistic rule's RNG stream.
        original_fired = clone_fired = 0
        for _ in range(50):
            try:
                plan.fire("cache.get")
            except InjectedFaultError:
                original_fired += 1
            try:
                clone.fire("cache.get")
            except InjectedFaultError:
                clone_fired += 1
        assert original_fired == clone_fired

    def test_arm_disarm_and_env(self, monkeypatch):
        assert faults.ACTIVE is None
        plan = faults.arm("worker.exec:io_error@1")
        assert faults.ACTIVE is plan
        with pytest.raises(InjectedFaultError):
            faults.fire("worker.exec")
        assert faults.injected_counts() == {"worker.exec": 1}
        faults.disarm()
        assert faults.ACTIVE is None
        faults.fire("worker.exec")  # disarmed: a no-op
        monkeypatch.setenv(faults.ENV_VAR, "cache.put:io_error")
        armed = faults.arm_from_env()
        assert armed is not None and armed.wants("cache.put")
        monkeypatch.delenv(faults.ENV_VAR)
        faults.disarm()
        assert faults.arm_from_env() is None


# ----------------------------------------------------------------------
# storage sites: taxonomy, atomic publish, quarantine
# ----------------------------------------------------------------------
class TestStorageSites:
    def test_read_section_io_error_is_torn(self, snap):
        faults.arm("snapshot.read_section:io_error@1")
        with pytest.raises(SnapshotTornError):
            TripleStore.load(snap, lazy=False, verify=True)
        faults.disarm()
        assert len(TripleStore.load(snap, lazy=False)) > 0  # file unharmed

    def test_failed_write_preserves_previous_snapshot(self, snap, tmp_path):
        target = tmp_path / "out.snap"
        store = TripleStore.load(snap, lazy=False)
        store.save(str(target))
        before = target.read_bytes()
        faults.arm("snapshot.write:io_error@1")
        with pytest.raises(OSError):
            store.save(str(target))
        faults.disarm()
        # The interrupted publish left the previous bytes untouched and
        # no temp litter behind.
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp.*")) == []
        store.save(str(target))  # and the path still works

    def test_truncated_snapshot_is_torn(self, snap, tmp_path):
        clipped = tmp_path / "clipped.snap"
        data = open(snap, "rb").read()
        clipped.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotTornError):
            TripleStore.load(str(clipped), lazy=False, verify=True)

    def test_bitflipped_snapshot_is_corrupt(self, snap, tmp_path):
        damaged = tmp_path / "damaged.snap"
        data = bytearray(open(snap, "rb").read())
        with SnapshotReader(snap) as reader:
            _, offset, length = reader.info()["sections"][-1]
        data[offset + length // 2] ^= 0xFF
        damaged.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError):
            TripleStore.load(str(damaged), lazy=False, verify=True)

    def test_taxonomy_is_still_snapshoterror(self):
        # Every pre-existing `except SnapshotError` handler must keep
        # catching both refined classes.
        assert issubclass(SnapshotTornError, SnapshotError)
        assert issubclass(SnapshotCorruptError, SnapshotError)

    def test_bulkload_line_site(self, tmp_path):
        source = tmp_path / "tiny.nt"
        source.write_text(
            "".join(f"<http://s/{i}> <http://p> <http://o/{i}> .\n" for i in range(6))
        )
        faults.arm("bulkload.line:io_error@4")
        with pytest.raises(InjectedFaultError):
            TripleStore.bulk_load(str(source))
        faults.disarm()
        assert len(TripleStore.bulk_load(str(source))) == 6

    def test_cached_store_quarantines_and_rebuilds(self, tmp_path):
        store = cached_store("lubm", tmp_path, universities=1)
        triples = len(store)
        path = cache_snapshot_path("lubm", tmp_path, universities=1)
        damaged = bytearray(path.read_bytes())
        damaged[-10] ^= 0xFF
        path.write_bytes(bytes(damaged))
        rebuilt = cached_store("lubm", tmp_path, universities=1, lazy=False)
        assert len(rebuilt) == triples
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()  # evidence preserved for post-mortems
        # And the rebuilt cache entry verifies clean.
        TripleStore.load(str(path), verify=True)

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        assert quarantine_snapshot(str(tmp_path / "nope.snap")) is None


# ----------------------------------------------------------------------
# snapshot info CLI: exit codes distinguish corrupt from torn
# ----------------------------------------------------------------------
class TestSnapshotInfoCLI:
    def test_corrupt_exits_3_with_hint(self, snap, tmp_path, capsys):
        damaged = tmp_path / "damaged.snap"
        data = bytearray(open(snap, "rb").read())
        with SnapshotReader(snap) as reader:
            _, offset, length = reader.info()["sections"][-1]
        data[offset + length // 2] ^= 0xFF
        damaged.write_bytes(bytes(data))
        code = cli_main(["snapshot", "info", str(damaged), "--verify"], out=io.StringIO())
        assert code == 3
        err = capsys.readouterr().err
        assert "corrupt snapshot" in err
        assert "rebuild" in err

    def test_torn_exits_2_with_hint(self, snap, tmp_path, capsys):
        clipped = tmp_path / "clipped.snap"
        data = open(snap, "rb").read()
        clipped.write_bytes(data[: len(data) // 2])
        code = cli_main(["snapshot", "info", str(clipped), "--verify"], out=io.StringIO())
        assert code == 2
        err = capsys.readouterr().err
        assert "torn/unreadable snapshot" in err

    def test_healthy_snapshot_still_exits_0(self, snap):
        out = io.StringIO()
        assert cli_main(["snapshot", "info", snap, "--verify"], out=out) == 0
        assert "checksums     OK" in out.getvalue()


# ----------------------------------------------------------------------
# worker pool sites: crash / OOM / pipe errors, driven by injection
# ----------------------------------------------------------------------
def _pool_config(snap, spec="", **overrides):
    defaults = dict(
        data=snap,
        port=0,
        workers=1,
        timeout=10.0,
        faults=spec,
        # Tests want fast heals, not production pacing.
        respawn_backoff_base=0.05,
        respawn_backoff_cap=0.2,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestPoolSites:
    def test_worker_crash_mid_query_recovers(self, snap):
        restarts = []
        pool = WorkerPool(
            _pool_config(snap, "worker.exec:crash@2"),
            on_restart=lambda: restarts.append(1),
        )
        try:
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            reply = pool.execute(QUERY_HEADOF, "json")
            assert reply.kind == "error"
            assert "died mid-query" in reply.message
            # The replacement armed the same plan with fresh counters,
            # so its first query (hit 1, not 2) succeeds.  (Waiting for
            # it also orders us after the heal's restart callback.)
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            assert restarts, "restart callback never fired"
            assert pool.alive == 1
        finally:
            pool.close()

    def test_worker_oom_reports_and_recovers(self, snap):
        restarts = []
        pool = WorkerPool(
            _pool_config(snap, "worker.exec:oom@2"),
            on_restart=lambda: restarts.append(1),
        )
        try:
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            reply = pool.execute(QUERY_HEADOF, "json")
            # The worker announced the crash before exiting, so the
            # client sees the cause rather than a broken pipe.
            assert reply.kind == "error"
            assert "out of memory" in reply.message
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            assert restarts
        finally:
            pool.close()

    def test_parent_recv_fault_replaces_worker(self, snap):
        restarts = []
        pool = WorkerPool(
            _pool_config(snap), on_restart=lambda: restarts.append(1)
        )
        try:
            faults.arm("worker.recv:io_error@1")
            reply = pool.execute(QUERY_HEADOF, "json")
            assert reply.kind == "error"
            assert "died mid-query" in reply.message
            faults.disarm()
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            assert restarts
        finally:
            faults.disarm()
            pool.close()

    def test_parent_send_fault_replaces_worker(self, snap):
        pool = WorkerPool(_pool_config(snap))
        try:
            faults.arm("worker.send:io_error@1")
            reply = pool.execute(QUERY_HEADOF, "json")
            assert reply.kind == "error"
            assert "unavailable" in reply.message
            faults.disarm()
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
        finally:
            faults.disarm()
            pool.close()

    def test_worker_delay_trips_hard_timeout(self, snap):
        config = _pool_config(
            snap, "worker.exec:delay=5@2", timeout=0.3, grace=0.2, queue_wait=15.0
        )
        pool = WorkerPool(config)
        try:
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
            started = time.perf_counter()
            reply = pool.execute(QUERY_HEADOF, "json")
            assert reply.kind == "timeout"
            # Hard deadline, not the injected 5s stall.
            assert time.perf_counter() - started < 3.0
            assert pool.execute(QUERY_HEADOF, "json").kind == "ok"
        finally:
            pool.close()

    def test_stats_surface_roster_health(self, snap):
        pool = WorkerPool(_pool_config(snap))
        try:
            stats = pool.stats()
            assert stats["alive"] == 1 and stats["target"] == 1
            assert stats["deficit"] == 0
            assert stats["backoff_seconds"] == 0
            assert stats["snapshot_fallbacks"] == 0
        finally:
            pool.close()


# ----------------------------------------------------------------------
# WAL sites and the drained-shutdown durability window
# ----------------------------------------------------------------------
EXW = "http://example.org/waldrain#"


class TestWalSites:
    def test_wal_sites_are_registered(self):
        for site in ("wal.append", "wal.fsync", "wal.replay"):
            assert site in faults.KNOWN_SITES
            FaultPlan(f"{site}:io_error@1")  # parses like any other site

    def test_append_fault_fails_the_update_but_not_the_server(self, snap, tmp_path):
        """An injected WAL write failure must surface as a 5xx — the
        client is NOT acked (the update may be lost on restart) — while
        reads keep serving and later updates land again."""
        import json as json_module
        import shutil
        import urllib.error
        import urllib.request

        from repro.server.app import SparqlServer

        data = str(tmp_path / "walfault.snap")
        shutil.copy(snap, data)
        config = ServerConfig(
            data=data,
            port=0,
            workers=1,
            timeout=15.0,
            wal=str(tmp_path / "walfault.wal"),
            faults="wal.append:io_error@2",
        )
        with SparqlServer(config) as instance:
            def update(i):
                request = urllib.request.Request(
                    instance.url + "/update",
                    data=f"INSERT DATA {{ <{EXW}n{i}> <{EXW}p> <{EXW}o> }}".encode(),
                    headers={"Content-Type": "application/sparql-update"},
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json_module.loads(response.read())

            status, _ = update(0)
            assert status == 200

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                update(1)
            assert excinfo.value.code == 500
            assert "error" in json_module.loads(excinfo.value.read())

            # The schedule is spent: the next update acks durably, and
            # the read path never blinked.
            status, _ = update(2)
            assert status == 200
            assert instance.pool.stats()["alive"] == 1

    def test_drained_shutdown_fsyncs_the_wal(self, snap, tmp_path):
        """The SIGTERM/SIGINT drain path (``SparqlServer.shutdown``)
        must fsync the WAL before exit: with policy ``off`` no fsync
        has run by ack time, so an orderly drain that skipped the final
        fsync would leave the last group-commit window to chance."""
        import json as json_module
        import shutil
        import urllib.request

        from repro.server.app import SparqlServer
        from repro.storage.wal import scan_wal

        data = str(tmp_path / "draindur.snap")
        shutil.copy(snap, data)
        wal_path = str(tmp_path / "draindur.wal")
        config = ServerConfig(
            data=data, port=0, workers=1, timeout=15.0,
            wal=wal_path, wal_fsync="off",
        )
        instance = SparqlServer(config)
        instance.start()
        request = urllib.request.Request(
            instance.url + "/update",
            data=f"INSERT DATA {{ <{EXW}a> <{EXW}p> <{EXW}b> }}".encode(),
            headers={"Content-Type": "application/sparql-update"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            json_module.loads(response.read())
        wal = instance.wal
        assert wal is not None and wal.fsync_count == 0  # policy off: acked, not fsynced

        instance.shutdown()  # what the SIGTERM/SIGINT handler drives

        assert wal.fsync_count == 1, "drain exited without the final fsync"
        assert wal._closed
        scan = scan_wal(wal_path)
        assert scan.torn is None and len(scan.records) == 1
