"""The sorted-run execution layer: primitives, forced paths, equivalence.

Four levels of coverage:

1. unit tests for the galloping / sorted-set / leapfrog primitives in
   ``repro.storage.runs`` (boundaries, empty inputs, duplicates);
2. forced-path tests for :func:`~repro.sparql.bags.merge_join_streamed`
   — empty runs, duplicate keys, UNBOUND columns — each checked for
   exact bag equality against the hash :func:`~repro.sparql.bags.join`;
3. engine-level checks that the merge / leapfrog / intersection paths
   actually *fire* on frozen stores (counters observable), that
   ``sorted_runs=False`` pins the classic paths, and hypothesis
   property tests asserting both configurations × both engines ×
   candidate shapes are row-set-identical (the differential suite in
   ``test_differential.py`` extends this to full queries × 300 seeds);
4. the satellite invariants: cached predicate id sets, batch decode,
   ``TripleStore.freeze`` and snapshot permutation verification.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp import HashJoinEngine, WCOJoinEngine
from repro.core.metrics import EXEC_COUNTERS
from repro.rdf import Dataset, IRI, TriplePattern, Variable
from repro.sparql.bags import Bag, UNBOUND, join, merge_join_streamed
from repro.storage import (
    FrozenTripleIndexes,
    SnapshotError,
    SortedIdSet,
    SortedRun,
    TripleStore,
    gallop_intersect,
    gallop_left,
    leapfrog_intersect,
)
from repro.storage.snapshot import SnapshotReader, write_snapshot

from .strategies import datasets, triple_patterns

EX = "http://x/"
P, Q, R = IRI(EX + "p"), IRI(EX + "q"), IRI(EX + "r")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestGallop:
    def test_empty_range(self):
        assert gallop_left([], 5, 0, 0) == 0

    def test_positions(self):
        seq = [1, 3, 3, 7, 9]
        for key in range(11):
            import bisect

            assert gallop_left(seq, key, 0, len(seq)) == bisect.bisect_left(seq, key)

    def test_respects_lo(self):
        seq = [1, 2, 3, 4, 5]
        assert gallop_left(seq, 1, 3, 5) == 3

    @given(
        st.lists(st.integers(0, 50), max_size=40),
        st.integers(0, 50),
        st.integers(0, 40),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_bisect(self, values, key, lo):
        import bisect

        seq = sorted(values)
        lo = min(lo, len(seq))
        assert gallop_left(seq, key, lo, len(seq)) == bisect.bisect_left(
            seq, key, lo, len(seq)
        )


class TestSortedIdSet:
    def test_membership_len_iter(self):
        ids = SortedIdSet.from_ids([5, 1, 3, 3, 1])
        assert len(ids) == 3
        assert list(ids) == [1, 3, 5]
        assert 3 in ids and 2 not in ids and -1 not in ids and "x" not in ids

    def test_set_equality(self):
        assert SortedIdSet.from_ids([2, 1]) == {1, 2}
        assert SortedIdSet.from_ids([2, 1]) != {1, 3}
        assert SortedIdSet.from_ids([1]) == SortedIdSet.from_ids([1])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SortedIdSet.from_ids([1]))

    def test_intersect_run(self):
        ids = SortedIdSet.from_ids([1, 4, 6, 9])
        run = array("Q", [0, 1, 2, 4, 5, 9, 12])
        assert ids.intersect_run(run, 0, len(run)) == [1, 4, 9]
        assert ids.intersect_run(run, 2, 5) == [4]
        assert ids.intersect_run(run, 3, 3) == []


class TestIntersections:
    @given(
        st.lists(st.integers(0, 30), max_size=25),
        st.lists(st.integers(0, 30), max_size=25),
    )
    @settings(max_examples=80, deadline=None)
    def test_gallop_intersect_is_set_intersection(self, a, b):
        sa, sb = sorted(set(a)), sorted(set(b))
        got = gallop_intersect(sa, 0, len(sa), sb, 0, len(sb))
        assert got == sorted(set(a) & set(b))

    @given(st.lists(st.lists(st.integers(0, 15), max_size=20), min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_leapfrog_is_multiway_intersection(self, groups):
        runs = [sorted(set(g)) for g in groups]
        expected = set(runs[0])
        for run in runs[1:]:
            expected &= set(run)
        assert leapfrog_intersect(runs) == sorted(expected)

    def test_leapfrog_empty_inputs(self):
        assert leapfrog_intersect([]) == []
        assert leapfrog_intersect([[], [1, 2]]) == []


class TestSortedRun:
    def test_view_semantics(self):
        backing = array("Q", [1, 3, 5, 7, 9])
        run = SortedRun(backing, 1, 4)
        assert len(run) == 3 and list(run) == [3, 5, 7]
        assert run[0] == 3 and run[2] == 7
        assert 5 in run and 9 not in run and 1 not in run
        with pytest.raises(IndexError):
            run[3]

    def test_empty(self):
        run = SortedRun(array("Q"), 0, 0)
        assert not run and list(run) == []


# ----------------------------------------------------------------------
# merge_join_streamed forced paths (vs the hash join oracle)
# ----------------------------------------------------------------------
def _merge_vs_hash(build_schema, build_rows, probe_schema, probe_rows):
    build = Bag.from_rows(build_schema, list(build_rows))
    merged = merge_join_streamed(build, probe_schema, iter(probe_rows))
    hashed = join(
        Bag.from_rows(build_schema, list(build_rows)),
        Bag.from_rows(probe_schema, list(probe_rows)),
    )
    assert merged == hashed
    return merged


class TestMergeJoinStreamed:
    def test_empty_sides(self):
        assert len(_merge_vs_hash(("a", "b"), [], ("a",), [])) == 0
        assert len(_merge_vs_hash(("a", "b"), [(1, 2)], ("a",), [])) == 0
        assert len(_merge_vs_hash(("a", "b"), [], ("a", "c"), [(1, 9)])) == 0

    def test_duplicate_keys_multiply(self):
        result = _merge_vs_hash(
            ("a", "b"),
            [(1, 10), (1, 11), (2, 20)],
            ("a", "c"),
            [(1, 7), (1, 8), (3, 9)],
        )
        assert len(result) == 4  # 2 build × 2 probe rows at key 1

    def test_skewed_keys_gallop(self):
        build = [(k, k) for k in range(0, 1000, 3)]
        probe = [(k, -k) for k in (0, 998, 999, 999)]
        result = _merge_vs_hash(("a", "b"), build, ("a", "c"), probe)
        assert len(result) == 3  # keys 0 and 999 (twice); 998 misses

    def test_unbound_build_rows(self):
        result = _merge_vs_hash(
            ("a", "b"),
            [(UNBOUND, 10), (1, 11), (2, 12)],
            ("a", "c"),
            [(1, 7), (2, 8)],
        )
        # The UNBOUND build row is compatible with both probe keys.
        assert len(result) == 4

    def test_unbound_probe_rows(self):
        result = _merge_vs_hash(
            ("a", "b"),
            [(1, 11), (2, 12)],
            ("a", "c"),
            [(UNBOUND, 7), (2, 8)],
        )
        assert len(result) == 3

    def test_rejects_multi_shared_variables(self):
        build = Bag.from_rows(("a", "b"), [(1, 2)])
        with pytest.raises(ValueError):
            merge_join_streamed(build, ("a", "b", "c"), iter([(1, 2, 3)]))

    def test_keep_and_stop(self):
        build = Bag.from_rows(("a",), [(k,) for k in range(10)])
        result = merge_join_streamed(
            build,
            ("a", "c"),
            iter([(k, k * 2) for k in range(10)]),
            keep=lambda row: row[0] % 2 == 0,
            stop_at=3,
        )
        assert [row[0] for row in result.rows] == [0, 2, 4]

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=20),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence(self, build_rows, probe_rows):
        build_rows = sorted(build_rows)
        probe_rows = sorted(probe_rows)
        _merge_vs_hash(("a", "b"), build_rows, ("a", "c"), probe_rows)


# ----------------------------------------------------------------------
# engine-level path selection and equivalence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chain_store():
    d = Dataset()
    for i in range(40):
        s = IRI(EX + f"n{i}")
        d.add_spo(s, P, IRI(EX + "hub"))
        d.add_spo(s, Q, IRI(EX + f"n{(i + 1) % 40}"))
        if i % 4 == 0:
            d.add_spo(s, R, IRI(EX + "flag"))
    return TripleStore.from_dataset(d).freeze()


class TestEnginePaths:
    def test_merge_join_path_fires(self, chain_store):
        patterns = [
            TriplePattern(X, P, IRI(EX + "hub")),
            TriplePattern(X, R, IRI(EX + "flag")),
        ]
        before = EXEC_COUNTERS.snapshot()
        sorted_bag = HashJoinEngine(chain_store).evaluate(patterns)
        delta = EXEC_COUNTERS.delta_since(before)
        assert delta["merge_joins"] >= 1 and delta["hash_joins"] == 0
        baseline = HashJoinEngine(chain_store, sorted_runs=False).evaluate(patterns)
        assert sorted_bag == baseline and len(sorted_bag) == 10

    def test_sorted_runs_off_pins_hash_path(self, chain_store):
        patterns = [
            TriplePattern(X, P, IRI(EX + "hub")),
            TriplePattern(X, R, IRI(EX + "flag")),
        ]
        before = EXEC_COUNTERS.snapshot()
        HashJoinEngine(chain_store, sorted_runs=False).evaluate(patterns)
        delta = EXEC_COUNTERS.delta_since(before)
        assert delta["merge_joins"] == 0 and delta["hash_joins"] >= 1

    def test_thawed_store_falls_back(self, chain_store):
        patterns = [
            TriplePattern(X, P, IRI(EX + "hub")),
            TriplePattern(X, R, IRI(EX + "flag")),
        ]
        thawed = TripleStore.from_dataset(
            Dataset(
                [t for t in map(chain_store.dictionary.decode_triple,
                                chain_store.indexes.all_triples())]
            )
        )
        before = EXEC_COUNTERS.snapshot()
        thawed_engine = HashJoinEngine(thawed)
        bag = thawed_engine.evaluate(patterns)
        assert EXEC_COUNTERS.delta_since(before)["merge_joins"] == 0
        # Different stores mint different ids: compare term-level bags.
        frozen_engine = HashJoinEngine(chain_store)
        assert thawed_engine.decode_bag(bag) == frozen_engine.decode_bag(
            frozen_engine.evaluate(patterns)
        )

    def test_wco_leapfrog_consumes_verifier(self, chain_store):
        patterns = [
            TriplePattern(X, P, IRI(EX + "hub")),
            TriplePattern(X, R, IRI(EX + "flag")),
        ]
        before = EXEC_COUNTERS.snapshot()
        bag = WCOJoinEngine(chain_store).evaluate(patterns)
        delta = EXEC_COUNTERS.delta_since(before)
        assert delta["candidate_intersections"] >= 1
        assert delta["gallop_probes"] >= 1
        assert bag == WCOJoinEngine(chain_store, sorted_runs=False).evaluate(patterns)

    def test_sorted_candidates_intersect_runs(self, chain_store):
        lookup = chain_store.lookup
        ids = SortedIdSet.from_ids(
            lookup(IRI(EX + f"n{i}")) for i in (0, 4, 5, 8)
        )
        patterns = [TriplePattern(X, P, IRI(EX + "hub"))]
        for cls in (HashJoinEngine, WCOJoinEngine):
            sorted_bag = cls(chain_store).evaluate(patterns, {"x": ids})
            set_bag = cls(chain_store, sorted_runs=False).evaluate(
                patterns, {"x": set(ids)}
            )
            assert sorted_bag == set_bag and len(sorted_bag) == 4

    def test_estimate_prices_merge_cheaper(self, chain_store):
        patterns = [
            TriplePattern(X, P, IRI(EX + "hub")),
            TriplePattern(X, R, IRI(EX + "flag")),
        ]
        merge_cost = HashJoinEngine(chain_store).estimate(patterns).cost
        hash_cost = HashJoinEngine(chain_store, sorted_runs=False).estimate(patterns).cost
        assert merge_cost < hash_cost

    @settings(max_examples=40, deadline=None)
    @given(datasets(), st.lists(triple_patterns(), min_size=1, max_size=3))
    def test_sorted_and_classic_paths_agree(self, dataset, patterns):
        store = TripleStore.from_dataset(dataset).freeze()
        for cls in (HashJoinEngine, WCOJoinEngine):
            sorted_bag = cls(store).evaluate(patterns)
            classic = cls(store, sorted_runs=False).evaluate(patterns)
            assert sorted_bag == classic

    @settings(max_examples=30, deadline=None)
    @given(datasets(), st.lists(triple_patterns(), min_size=1, max_size=2))
    def test_paths_agree_under_candidates(self, dataset, patterns):
        store = TripleStore.from_dataset(dataset).freeze()
        ids = {store.dictionary.lookup(t.subject) for t in dataset}
        ids.discard(None)
        if not ids:
            return
        sorted_cand = {"v0": SortedIdSet.from_ids(ids)}
        set_cand = {"v0": ids}
        for cls in (HashJoinEngine, WCOJoinEngine):
            assert cls(store).evaluate(patterns, sorted_cand) == cls(
                store, sorted_runs=False
            ).evaluate(patterns, set_cand)


# ----------------------------------------------------------------------
# satellites: cached predicate sets, freeze, batch decode, verification
# ----------------------------------------------------------------------
class TestPredicateSetCaches:
    def _store(self):
        d = Dataset()
        d.add_spo(IRI(EX + "a"), P, IRI(EX + "b"))
        d.add_spo(IRI(EX + "c"), P, IRI(EX + "b"))
        d.add_spo(IRI(EX + "a"), Q, IRI(EX + "d"))
        return TripleStore.from_dataset(d)

    def test_frozen_returns_cached_sorted_sets(self):
        store = self._store().freeze()
        p = store.lookup(P)
        indexes = store.indexes
        first = indexes.subjects_of_predicate(p)
        assert first is indexes.subjects_of_predicate(p)  # cached object
        assert first == {store.lookup(IRI(EX + "a")), store.lookup(IRI(EX + "c"))}
        assert list(first) == sorted(first.ids)
        objects = indexes.objects_of_predicate(p)
        assert objects is indexes.objects_of_predicate(p)
        assert objects == {store.lookup(IRI(EX + "b"))}

    def test_mutable_cache_invalidated_on_insert(self):
        store = self._store()
        p = store.lookup(P)
        before = store.indexes.subjects_of_predicate(p)
        from repro.rdf import Triple

        store.add(Triple(IRI(EX + "z"), P, IRI(EX + "b")))
        after = store.indexes.subjects_of_predicate(store.lookup(P))
        assert len(after) == len(before) + 1


class TestFreeze:
    def test_freeze_is_idempotent_and_equivalent(self):
        d = Dataset()
        for i in range(10):
            d.add_spo(IRI(EX + f"s{i}"), P, IRI(EX + f"o{i % 3}"))
        cold = TripleStore.from_dataset(d)
        expected = sorted(cold.indexes.all_triples())
        frozen = cold.freeze()
        assert frozen is cold
        assert isinstance(cold.indexes, FrozenTripleIndexes)
        assert cold.freeze() is cold
        assert sorted(cold.indexes.all_triples()) == expected

    def test_write_after_freeze_uses_delta_overlay(self):
        d = Dataset()
        d.add_spo(IRI(EX + "a"), P, IRI(EX + "b"))
        store = TripleStore.from_dataset(d).freeze()
        from repro.rdf import Triple
        from repro.storage import DeltaOverlayIndexes

        assert store.add(Triple(IRI(EX + "c"), P, IRI(EX + "d")))
        assert len(store) == 2
        # No thaw: the write lands in a sorted delta overlay and the
        # store keeps the frozen sorted-run read paths.
        assert isinstance(store.indexes, DeltaOverlayIndexes)
        assert isinstance(store.indexes, FrozenTripleIndexes)

    def test_empty_store_freezes(self):
        store = TripleStore().freeze()
        assert len(store) == 0
        assert isinstance(store.indexes, FrozenTripleIndexes)


class TestBatchDecode:
    def test_lazy_dictionary_batch_decode(self, tmp_path):
        d = Dataset()
        for i in range(20):
            d.add_spo(IRI(EX + f"s{i}"), P, IRI(EX + f"o{i}"))
        path = str(tmp_path / "batch.snap")
        TripleStore.from_dataset(d).save(path)
        store = TripleStore.load(path, lazy=True)
        try:
            ids = list(range(len(store.dictionary)))
            batch = store.decode_many(ids[5:15] + ids[5:15])
            assert set(batch) == set(ids[5:15])
            for term_id, term in batch.items():
                assert store.decode(term_id) == term
            with pytest.raises(KeyError):
                store.decode_many([10 ** 6])
        finally:
            store.close()

    def test_decode_bag_batches_per_distinct_id(self):
        d = Dataset()
        d.add_spo(IRI(EX + "a"), P, IRI(EX + "b"))
        store = TripleStore.from_dataset(d)
        engine = HashJoinEngine(store)
        a = store.lookup(IRI(EX + "a"))
        bag = Bag.from_rows(("x", "y"), [(a, a), (a, UNBOUND)])
        before = EXEC_COUNTERS.snapshot()
        decoded = engine.decode_bag(bag)
        delta = EXEC_COUNTERS.delta_since(before)
        assert delta["batch_decoded_ids"] == 1  # 'a' decoded once
        assert delta["decoded_cells"] == 4
        assert decoded == Bag([{"x": IRI(EX + "a"), "y": IRI(EX + "a")},
                               {"x": IRI(EX + "a")}])


class TestPermutationVerification:
    def _dataset(self):
        d = Dataset()
        for i in range(12):
            d.add_spo(IRI(EX + f"s{i}"), P, IRI(EX + f"o{i % 4}"))
        return d

    def test_valid_snapshot_verifies(self, tmp_path):
        path = str(tmp_path / "good.snap")
        TripleStore.from_dataset(self._dataset()).save(path)
        with SnapshotReader(path) as reader:
            assert reader.verify_permutations() is True

    def test_unsorted_permutations_rejected(self, tmp_path):
        store = TripleStore.from_dataset(self._dataset())
        frozen = store.freeze().indexes
        arrays = [array("Q", a) for a in frozen.permutation_arrays()]
        # Corrupt the SPO pair-key order (valid checksums, broken sort).
        arrays[0][0], arrays[0][-1] = arrays[0][-1], arrays[0][0]
        s_col, p_col, o_col = zip(*frozen.all_triples())
        path = str(tmp_path / "bad.snap")
        dictionary = store.dictionary
        write_snapshot(
            path,
            dictionary,
            (array("I", s_col), array("I", p_col), array("I", o_col)),
            generation=1,
            statistics=store.statistics,
            permutations=tuple(arrays),
        )
        with SnapshotReader(path) as reader:
            reader.verify()  # checksums are fine …
            with pytest.raises(SnapshotError, match="out of order"):
                reader.verify_permutations()  # … but the sort is not

    def test_validate_sorted_catches_third_column(self):
        frozen = FrozenTripleIndexes.from_columns([1, 1], [2, 2], [3, 4])
        frozen.validate_sorted()  # sanity: valid data passes
        bad = FrozenTripleIndexes(
            array("Q", [5, 5]), array("Q", [4, 3]),  # SPO third column descends
            array("Q", [1, 2]), array("Q", [1, 1]),
            array("Q", [1, 2]), array("Q", [1, 1]),
        )
        with pytest.raises(ValueError, match="SPO permutation out of order"):
            bad.validate_sorted()

    def test_cli_reports_permutation_check(self, tmp_path, capsys):
        from repro.cli import main

        nt = tmp_path / "tiny.nt"
        nt.write_text('<http://x/a> <http://x/p> <http://x/b> .\n')
        snap = str(tmp_path / "tiny.snap")
        assert main(["snapshot", "build", str(nt), snap]) == 0
        assert main(["snapshot", "info", snap, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "checksums     OK" in out
        assert "permutations  OK" in out


class TestCountersExposure:
    def test_cli_stats_prints_exec_counters(self, tmp_path, capsys):
        from repro.cli import main

        nt = tmp_path / "data.nt"
        nt.write_text(
            "".join(
                f"<http://x/s{i}> <http://x/p> <http://x/o{i % 3}> .\n"
                for i in range(6)
            )
        )
        snap = str(tmp_path / "data.snap")
        assert main(["snapshot", "build", str(nt), snap]) == 0
        capsys.readouterr()
        code = main(
            ["query", snap, "SELECT ?s WHERE { ?s <http://x/p> <http://x/o0> }", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# exec: " in out and "merge_joins" in out

    def test_server_metrics_aggregate_exec_counters(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.record_query(
            "miss", 0.01, 5, 1.0, {"merge_joins": 2, "gallop_probes": 40}
        )
        metrics.record_query("miss", 0.01, 5, 1.0, {"merge_joins": 1})
        rendered = metrics.render(
            generation=1,
            pool_stats={"alive": 1, "target": 1, "backoff_seconds": 0.0,
                        "snapshot_fallbacks": 0},
            cache_stats={},
        )
        assert 'repro_exec_path_total{counter="merge_joins"} 3' in rendered
        assert 'repro_exec_path_total{counter="gallop_probes"} 40' in rendered
