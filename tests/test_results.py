"""Unit tests for SPARQL results serialization (JSON + CSV)."""

import json

import pytest

from repro.rdf import BlankNode, IRI, Literal
from repro.sparql.results import to_csv, to_json, to_json_dict


ROWS = [
    {"x": IRI("http://x/a"), "name": Literal("Alice", language="en")},
    {"x": IRI("http://x/b")},  # name unbound (OPTIONAL miss)
    {"x": BlankNode("b0"), "name": Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")},
]


class TestJson:
    def test_head_lists_variables(self):
        doc = to_json_dict(["x", "name"], ROWS)
        assert doc["head"]["vars"] == ["x", "name"]

    def test_uri_binding(self):
        doc = to_json_dict(["x"], ROWS[:1])
        assert doc["results"]["bindings"][0]["x"] == {
            "type": "uri",
            "value": "http://x/a",
        }

    def test_language_literal(self):
        doc = to_json_dict(["name"], ROWS[:1])
        binding = doc["results"]["bindings"][0]["name"]
        assert binding == {"type": "literal", "value": "Alice", "xml:lang": "en"}

    def test_typed_literal(self):
        doc = to_json_dict(["name"], ROWS[2:])
        binding = doc["results"]["bindings"][0]["name"]
        assert binding["datatype"].endswith("integer")
        assert "xml:lang" not in binding

    def test_plain_literal_has_no_datatype_key(self):
        doc = to_json_dict(["v"], [{"v": Literal("plain")}])
        assert doc["results"]["bindings"][0]["v"] == {"type": "literal", "value": "plain"}

    def test_bnode(self):
        doc = to_json_dict(["x"], ROWS[2:])
        assert doc["results"]["bindings"][0]["x"] == {"type": "bnode", "value": "b0"}

    def test_unbound_variable_absent(self):
        doc = to_json_dict(["x", "name"], ROWS)
        assert "name" not in doc["results"]["bindings"][1]

    def test_round_trips_through_json(self):
        text = to_json(["x", "name"], ROWS, indent=2)
        assert json.loads(text)["head"]["vars"] == ["x", "name"]

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            to_json_dict(["x"], [{"x": 42}])


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv(["x", "name"], ROWS)
        lines = text.split("\r\n")
        assert lines[0] == "x,name"
        assert lines[1] == "http://x/a,Alice"

    def test_unbound_is_empty_cell(self):
        text = to_csv(["x", "name"], ROWS)
        assert text.split("\r\n")[2] == "http://x/b,"

    def test_bnode_prefix(self):
        text = to_csv(["x"], ROWS[2:])
        assert text.split("\r\n")[1] == "_:b0"

    def test_quoting(self):
        rows = [{"v": Literal('say "hi", ok\nbye')}]
        text = to_csv(["v"], rows)
        assert text.split("\r\n")[1] == '"say ""hi"", ok\nbye"'

    def test_crlf_terminated(self):
        assert to_csv(["x"], []).endswith("\r\n")


class TestEndToEnd:
    def test_engine_result_serializes(self, presidents_store):
        from repro.core import SparqlUOEngine

        engine = SparqlUOEngine(presidents_store, mode="full")
        result = engine.execute(
            "SELECT ?x ?same WHERE { "
            "?x <http://example.org/wikiPageWikiLink> <http://example.org/President_of_the_United_States> "
            "OPTIONAL { ?x <http://example.org/sameAs> ?same } }"
        )
        doc = to_json_dict(result.variables, result.solutions)
        assert len(doc["results"]["bindings"]) == len(result)
        csv_text = to_csv(result.variables, result.solutions)
        assert csv_text.count("\r\n") == len(result) + 1
