"""Unit tests for SPARQL results serialization (JSON + CSV + TSV)."""

import csv
import io
import json

import pytest

from repro.rdf import BlankNode, IRI, Literal
from repro.rdf.terms import RDF_LANG_STRING, XSD_STRING
from repro.sparql.results import to_csv, to_json, to_json_dict, to_tsv


ROWS = [
    {"x": IRI("http://x/a"), "name": Literal("Alice", language="en")},
    {"x": IRI("http://x/b")},  # name unbound (OPTIONAL miss)
    {"x": BlankNode("b0"), "name": Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")},
]


class TestJson:
    def test_head_lists_variables(self):
        doc = to_json_dict(["x", "name"], ROWS)
        assert doc["head"]["vars"] == ["x", "name"]

    def test_uri_binding(self):
        doc = to_json_dict(["x"], ROWS[:1])
        assert doc["results"]["bindings"][0]["x"] == {
            "type": "uri",
            "value": "http://x/a",
        }

    def test_language_literal(self):
        doc = to_json_dict(["name"], ROWS[:1])
        binding = doc["results"]["bindings"][0]["name"]
        assert binding == {"type": "literal", "value": "Alice", "xml:lang": "en"}

    def test_typed_literal(self):
        doc = to_json_dict(["name"], ROWS[2:])
        binding = doc["results"]["bindings"][0]["name"]
        assert binding["datatype"].endswith("integer")
        assert "xml:lang" not in binding

    def test_plain_literal_has_no_datatype_key(self):
        doc = to_json_dict(["v"], [{"v": Literal("plain")}])
        assert doc["results"]["bindings"][0]["v"] == {"type": "literal", "value": "plain"}

    def test_bnode(self):
        doc = to_json_dict(["x"], ROWS[2:])
        assert doc["results"]["bindings"][0]["x"] == {"type": "bnode", "value": "b0"}

    def test_unbound_variable_absent(self):
        doc = to_json_dict(["x", "name"], ROWS)
        assert "name" not in doc["results"]["bindings"][1]

    def test_round_trips_through_json(self):
        text = to_json(["x", "name"], ROWS, indent=2)
        assert json.loads(text)["head"]["vars"] == ["x", "name"]

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            to_json_dict(["x"], [{"x": 42}])


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv(["x", "name"], ROWS)
        lines = text.split("\r\n")
        assert lines[0] == "x,name"
        assert lines[1] == "http://x/a,Alice"

    def test_unbound_is_empty_cell(self):
        text = to_csv(["x", "name"], ROWS)
        assert text.split("\r\n")[2] == "http://x/b,"

    def test_bnode_prefix(self):
        text = to_csv(["x"], ROWS[2:])
        assert text.split("\r\n")[1] == "_:b0"

    def test_quoting(self):
        rows = [{"v": Literal('say "hi", ok\nbye')}]
        text = to_csv(["v"], rows)
        assert text.split("\r\n")[1] == '"say ""hi"", ok\nbye"'

    def test_crlf_terminated(self):
        assert to_csv(["x"], []).endswith("\r\n")


class TestTsv:
    def test_header_has_question_marks(self):
        text = to_tsv(["x", "name"], ROWS)
        assert text.split("\n")[0] == "?x\t?name"

    def test_terms_render_in_ntriples_syntax(self):
        lines = to_tsv(["x", "name"], ROWS).split("\n")
        assert lines[1] == '<http://x/a>\t"Alice"@en'
        assert lines[3] == '_:b0\t"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_unbound_is_empty_cell(self):
        lines = to_tsv(["x", "name"], ROWS).split("\n")
        assert lines[2] == "<http://x/b>\t"

    def test_embedded_delimiters_are_escaped_not_quoted(self):
        # N-Triples escaping keeps tabs/newlines out of the raw cell,
        # so the line/column structure survives any literal content.
        rows = [{"v": Literal("tab\there\nand newline")}]
        lines = to_tsv(["v"], rows).split("\n")
        assert lines[1] == '"tab\\there\\nand newline"'

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            to_tsv(["x"], [{"x": object()}])


def _json_term(binding):
    """Reconstruct a term from its JSON results encoding."""
    if binding["type"] == "uri":
        return IRI(binding["value"])
    if binding["type"] == "bnode":
        return BlankNode(binding["value"])
    return Literal(
        binding["value"],
        language=binding.get("xml:lang"),
        datatype=binding.get("datatype"),
    )


class TestRoundTrips:
    TERMS = [
        Literal("plain"),
        Literal("Grüße, 世界"),
        Literal("bonjour", language="fr"),
        Literal("hello", language="en-us"),
        Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"),
        Literal("1.5e3", datatype="http://www.w3.org/2001/XMLSchema#double"),
        Literal('quoted "inner" text', language="en"),
        Literal("comma, semicolon; pipe|"),
        Literal("line\nbreak and\r\nCRLF"),
        Literal("trailing space "),
        Literal(""),
        IRI("http://example.org/resource?a=1&b=2"),
        BlankNode("node0"),
    ]

    def test_typed_and_tagged_literals_round_trip_through_json(self):
        rows = [{"v": term} for term in self.TERMS]
        document = json.loads(to_json(["v"], rows))
        restored = [_json_term(b["v"]) for b in document["results"]["bindings"]]
        assert restored == self.TERMS

    def test_language_and_datatype_are_mutually_exclusive_in_json(self):
        rows = [{"v": Literal("x", language="en")}]
        binding = to_json_dict(["v"], rows)["results"]["bindings"][0]["v"]
        assert binding["xml:lang"] == "en"
        assert "datatype" not in binding  # rdf:langString is implied
        assert Literal("x", language="en").datatype == RDF_LANG_STRING

    def test_plain_literal_datatype_is_implicit_everywhere(self):
        rows = [{"v": Literal("x")}]
        assert Literal("x").datatype == XSD_STRING
        assert to_json_dict(["v"], rows)["results"]["bindings"][0]["v"] == {
            "type": "literal",
            "value": "x",
        }

    def test_lexical_values_round_trip_through_csv(self):
        # CSV is lossy on type information by design, but the lexical
        # forms must survive quoting/escaping exactly.
        literals = [term for term in self.TERMS if isinstance(term, Literal)]
        rows = [{"v": term} for term in literals]
        parsed = list(csv.reader(io.StringIO(to_csv(["v"], rows))))
        assert parsed[0] == ["v"]
        # Quoting protects every byte of the lexical form, embedded
        # CR/LF included.  csv.reader yields [] for a fully empty row —
        # CSV cannot tell an empty-string literal from an unbound cell,
        # which is exactly the lossiness TSV exists to avoid.
        expected = [term.lexical for term in literals]
        assert [row[0] if row else "" for row in parsed[1:]] == expected

    def test_csv_quoting_edge_cases(self):
        cases = {
            'say "hi", ok': '"say ""hi"", ok"',
            "a,b": '"a,b"',
            "nl\nin cell": '"nl\nin cell"',
            "cr\rin cell": '"cr\rin cell"',
            "plain": "plain",
        }
        for lexical, expected in cases.items():
            text = to_csv(["v"], [{"v": Literal(lexical)}])
            body = text[len("v\r\n"):]
            assert body == expected + "\r\n"

    def test_tsv_round_trips_terms_exactly(self):
        # TSV cells are full N-Triples terms: parse each cell back with
        # the N-Triples term parser and compare term equality.
        from repro.rdf.ntriples import parse_ntriples_string

        rows = [{"v": term} for term in self.TERMS if not isinstance(term, BlankNode)]
        lines = to_tsv(["v"], rows).rstrip("\n").split("\n")[1:]
        restored = []
        for cell in lines:
            statement = f"<http://x/s> <http://x/p> {cell} ."
            [triple] = list(parse_ntriples_string(statement))
            restored.append(triple.object)
        assert restored == [row["v"] for row in rows]


class TestEndToEnd:
    def test_engine_result_serializes(self, presidents_store):
        from repro.core import SparqlUOEngine

        engine = SparqlUOEngine(presidents_store, mode="full")
        result = engine.execute(
            "SELECT ?x ?same WHERE { "
            "?x <http://example.org/wikiPageWikiLink> <http://example.org/President_of_the_United_States> "
            "OPTIONAL { ?x <http://example.org/sameAs> ?same } }"
        )
        doc = to_json_dict(result.variables, result.solutions)
        assert len(doc["results"]["bindings"]) == len(result)
        csv_text = to_csv(result.variables, result.solutions)
        assert csv_text.count("\r\n") == len(result) + 1
