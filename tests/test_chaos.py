"""Chaos suite: a real server under seeded fault schedules.

Each scenario boots a full :class:`~repro.server.app.SparqlServer`
(spawned workers, ephemeral port) with a deterministic fault schedule
armed via ``ServerConfig.faults``, drives a fixed workload through
HTTP, and holds the failure-model contract:

1. every response is either **byte-identical** to the in-process
   engine's answer or a **well-formed 5xx/4xx** (JSON error document);
2. no request hangs past the hard deadline plus a scheduling margin;
3. the worker roster is **back to full strength** by the end — faults
   consume capacity temporarily, never permanently;
4. shutdown is clean.

The storage-site schedules (snapshot.read_section, snapshot.write,
bulkload.line) fire during *startup* in a server context and are
covered as unit tests in ``test_faults.py`` instead.  The centerpiece
here is the last-good-generation test: the snapshot goes bad on disk
while the server runs, a worker dies, and the survivors keep serving
while the heal thread retries — the crash-loop that motivated the
whole subsystem.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import SparqlUOEngine
from repro.datasets.lubm import generate_lubm
from repro.server import ServerConfig, SparqlServer
from repro.sparql.results import to_json
from repro.storage import TripleStore

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
QUERY_HEADOF = f"SELECT ?x ?y WHERE {{ ?x <{UB}headOf> ?y }}"
QUERY_OPTIONAL = (
    f"SELECT ?x ?dept ?mail WHERE {{ ?x <{UB}worksFor> ?dept "
    f"OPTIONAL {{ ?x <{UB}emailAddress> ?mail }} }}"
)
QUERY_UNION = (
    f"SELECT ?p WHERE {{ {{ ?p <{UB}headOf> ?o }} UNION {{ ?p <{UB}teacherOf> ?o }} }}"
)
WORKLOAD = [QUERY_HEADOF, QUERY_UNION, QUERY_OPTIONAL] * 4


@pytest.fixture(scope="module")
def snap(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "lubm.snap"
    TripleStore.from_dataset(generate_lubm(universities=1, seed=42)).save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def expected(snap):
    """Ground truth straight from the in-process engine: the bytes any
    200 response must equal, regardless of what faults fired."""
    engine = SparqlUOEngine(TripleStore.load(snap), bgp_engine="wco", mode="full")
    answers = {}
    for query in set(WORKLOAD):
        result = engine.execute(query)
        answers[query] = to_json(result.variables, result.solutions).encode()
    return answers


def chaos_config(snap, spec, **overrides):
    defaults = dict(
        data=snap,
        port=0,
        workers=2,
        timeout=10.0,
        cache_entries=32,
        faults=spec,
        respawn_backoff_base=0.05,
        respawn_backoff_cap=0.2,
        respawn_window=5.0,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def sparql_get(server, query, timeout=60):
    url = server.url + "/sparql?" + urllib.parse.urlencode({"query": query})
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def wait_for(predicate, deadline=20.0, interval=0.05):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def drive_workload(server, expected, allow_drop=False):
    """Issue the fixed workload; enforce contract points 1 and 2."""
    outcomes = []
    budget = server.config.hard_timeout + 10.0  # margin for respawn waits
    for query in WORKLOAD:
        started = time.perf_counter()
        try:
            status, _, body = sparql_get(server, query, timeout=budget)
            assert status == 200
            assert body == expected[query], f"non-identical 200 for {query!r}"
        except urllib.error.HTTPError as exc:
            # Failure is allowed; a malformed failure is not.
            assert exc.code in (500, 503, 504), f"unexpected status {exc.code}"
            document = json.loads(exc.read())
            assert "error" in document
            status = exc.code
        except (urllib.error.URLError, ConnectionError, OSError):
            # A dropped connection is only acceptable for schedules
            # that sabotage response serialization itself.
            if not allow_drop:
                raise
            status = -1
        assert time.perf_counter() - started < budget + 5.0, "request overran deadline"
        outcomes.append(status)
    return outcomes


def assert_roster_heals(server):
    assert wait_for(
        lambda: server.pool.stats()["alive"] == server.pool.stats()["target"]
    ), f"roster never healed: {server.pool.stats()}"


# ----------------------------------------------------------------------
# the chaos matrix
# ----------------------------------------------------------------------
class TestChaosMatrix:
    @pytest.mark.parametrize(
        ("spec", "min_ok"),
        [
            # Every *replacement* worker arms the same schedule, so a
            # crash on each worker's 2nd exec keeps recurring: at worst
            # every worker lifetime yields 1 ok + 1 error.
            ("worker.exec:crash@2", 5),  # hard process death mid-request
            ("worker.exec:oom@2", 5),  # MemoryError → announced crash path
            # Parent-side rules count hits process-globally: @2 fires once.
            ("worker.send:io_error@2", 10),  # request pipe breaks
            ("worker.recv:io_error@2", 10),  # reply pipe breaks
            # Fires once per worker (each arms fresh counters).
            ("engine.checkpoint:io_error@1", 9),  # engine-internal I/O failure
            ("cache.get:io_error@1+", 12),  # cache lookup always failing
            ("cache.put:io_error@1+", 12),  # cache admission always failing
        ],
    )
    def test_schedule_holds_contract(self, snap, expected, spec, min_ok):
        with SparqlServer(chaos_config(snap, spec)) as server:
            outcomes = drive_workload(server, expected)
            # The workload must not be wiped out: most answers arrive.
            assert outcomes.count(200) >= min_ok
            if spec.startswith("cache."):
                # A failing cache is invisible: every answer correct,
                # and the injections are visible in /metrics.
                assert outcomes.count(200) == len(WORKLOAD)
                with urllib.request.urlopen(server.url + "/metrics", timeout=30) as r:
                    text = r.read().decode()
                site = spec.split(":")[0]
                assert f'repro_faults_injected_total{{site="{site}"}}' in text
            assert_roster_heals(server)

    def test_response_serialization_fault_drops_connection_only(
        self, snap, expected
    ):
        # The 3rd response write aborts: that one client loses its
        # connection (exactly what a mid-response hangup looks like),
        # everyone else is answered correctly.
        with SparqlServer(chaos_config(snap, "server.respond:io_error@3")) as server:
            outcomes = drive_workload(server, expected, allow_drop=True)
            assert outcomes.count(-1) <= 1
            assert outcomes.count(200) >= len(WORKLOAD) - 1
            assert_roster_heals(server)

    def test_no_injection_when_disarmed(self, snap, expected):
        with SparqlServer(chaos_config(snap, "")) as server:
            assert all(s == 200 for s in drive_workload(server, expected))
            with urllib.request.urlopen(server.url + "/metrics", timeout=30) as r:
                text = r.read().decode()
            # The family is declared but no site ever fired a sample.
            assert "# TYPE repro_faults_injected_total counter" in text
            assert "repro_faults_injected_total{" not in text
            assert "repro_degraded_state 0" in text


# ----------------------------------------------------------------------
# stale-while-error (opt-in)
# ----------------------------------------------------------------------
class TestStaleWhileError:
    def test_stale_serving_end_to_end(self, snap, expected):
        config = chaos_config(snap, "", workers=1, stale_while_error=True)
        with SparqlServer(config) as server:
            _, _, first = sparql_get(server, QUERY_HEADOF)
            assert first == expected[QUERY_HEADOF]
            # Kill the only worker; the dead-pipe error reply triggers
            # the stale path for the cached query.  The *cache hit*
            # would normally answer first — bypass it by disabling
            # generation-keyed gets while keeping entries resident.
            victim = server.pool._workers[0]
            victim.proc.kill()
            victim.proc.join(10)
            server.generation_mixed = True  # skip the fresh-hit fast path
            status, headers, body = sparql_get(server, QUERY_HEADOF)
            assert status == 200
            assert headers.get("X-Repro-Stale") == "1"
            assert body == first
            assert server.metrics.stale_served_total >= 1
            server.generation_mixed = False
            assert_roster_heals(server)

    def test_stale_is_off_by_default(self, snap):
        config = chaos_config(snap, "", workers=1)
        with SparqlServer(config) as server:
            sparql_get(server, QUERY_HEADOF)
            victim = server.pool._workers[0]
            victim.proc.kill()
            victim.proc.join(10)
            server.generation_mixed = True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                sparql_get(server, QUERY_HEADOF)
            assert excinfo.value.code == 500
            server.generation_mixed = False
            assert_roster_heals(server)


# ----------------------------------------------------------------------
# the centerpiece: in-place snapshot corruption does not take the
# server down (acceptance criterion: last-good-generation fallback)
# ----------------------------------------------------------------------
class TestLastGoodGeneration:
    def test_corrupt_rebuild_keeps_serving_last_good_generation(
        self, snap, expected, tmp_path
    ):
        live = tmp_path / "live.snap"
        good_bytes = open(snap, "rb").read()
        live.write_bytes(good_bytes)
        config = chaos_config(str(live), "", workers=2, queue_wait=15.0)
        with SparqlServer(config) as server:
            assert sparql_get(server, QUERY_HEADOF)[2] == expected[QUERY_HEADOF]

            # The snapshot is "rebuilt in place" and the rebuild tears:
            # the path now holds truncated garbage.  Replaced via
            # rename — a new inode, the way any rebuild (including our
            # own atomic_overwrite) lands — so running workers keep
            # serving their mmap of the *old* inode.  (Truncating the
            # same inode would SIGBUS every mapped reader; that is
            # precisely the failure atomic publishing exists to
            # prevent.)
            torn = tmp_path / "torn.tmp"
            torn.write_bytes(good_bytes[: len(good_bytes) // 3])
            os.replace(torn, live)

            # One worker dies mid-flight.  Its replacement cannot load
            # the torn file — that is a snapshot fallback, not a crash
            # loop.
            victim = server.pool._workers[0]
            victim.proc.kill()
            victim.proc.join(10)

            # Touch the pool until the dead worker is discovered (the
            # idle queue round-robins, so at most a few requests), while
            # every response stays within the contract.
            saw_error = False
            for query in [QUERY_HEADOF, QUERY_UNION, QUERY_OPTIONAL] * 2:
                try:
                    status, _, body = sparql_get(server, query, timeout=60)
                    assert body == expected[query]
                except urllib.error.HTTPError as exc:
                    assert exc.code in (500, 503, 504)
                    saw_error = True
            assert saw_error or server.pool.stats()["alive"] < 2

            # The failed respawn is classified and counted; capacity is
            # degraded — but the endpoint still answers.
            assert wait_for(
                lambda: server.pool.stats()["snapshot_fallbacks"] >= 1
            ), f"no snapshot fallback recorded: {server.pool.stats()}"
            with urllib.request.urlopen(server.url + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            assert health["status"] == "degraded"
            assert health["alive"] == 1 and health["workers"] == 2
            assert health["snapshot_fallbacks"] >= 1
            with urllib.request.urlopen(server.url + "/metrics", timeout=30) as r:
                text = r.read().decode()
            assert "repro_degraded_state 1" in text
            fallback_lines = [
                line
                for line in text.splitlines()
                if line.startswith("repro_snapshot_fallbacks_total")
            ]
            assert fallback_lines and int(fallback_lines[0].split()[-1]) >= 1

            # The surviving worker keeps answering the last-good
            # generation, byte-identical.
            status, _, body = sparql_get(server, QUERY_HEADOF, timeout=60)
            assert status == 200 and body == expected[QUERY_HEADOF]

            # The operator restores the file; the heal thread (backoff,
            # not request arrival — the server is idle now) repairs the
            # roster on its own.
            fresh = tmp_path / "fresh.tmp"
            fresh.write_bytes(good_bytes)
            os.replace(fresh, live)
            assert wait_for(
                lambda: server.pool.stats()["alive"] == 2, deadline=30.0
            ), f"healer never recovered the roster: {server.pool.stats()}"
            with urllib.request.urlopen(server.url + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok"
            # Same bytes restored → same generation → caching intact.
            assert not server.generation_mixed
            status, _, body = sparql_get(server, QUERY_HEADOF, timeout=60)
            assert status == 200 and body == expected[QUERY_HEADOF]


# ----------------------------------------------------------------------
# write-path chaos: delta admission and compaction publish faults
# ----------------------------------------------------------------------
EXC = "http://example.org/chaos#"
LIVE_QUERY = f"SELECT ?s WHERE {{ ?s <{EXC}tag> <{EXC}on> }}"


def post_update(server, text, timeout=60):
    request = urllib.request.Request(
        server.url + "/update",
        data=text.encode("utf-8"),
        headers={"Content-Type": "application/sparql-update"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def insert_stmt(i):
    return f"INSERT DATA {{ <{EXC}n{i}> <{EXC}tag> <{EXC}on> }}"


def live_count(server):
    status, _, body = sparql_get(server, LIVE_QUERY)
    assert status == 200
    return len(json.loads(body)["results"]["bindings"])


class TestWriteChaos:
    def test_delta_apply_fault_rejects_update_atomically(self, snap, tmp_path):
        """A failing write batch is rejected wholesale — parent-first
        application means the fleet never sees a poisoned update, the
        generation does not advance, and reads keep serving."""
        import shutil

        live = str(tmp_path / "wchaos.snap")
        shutil.copy(snap, live)
        config = chaos_config(live, "delta.apply:io_error@2", workers=2)
        with SparqlServer(config) as server:
            status, outcome = post_update(server, insert_stmt(0))
            assert status == 200 and outcome["added"] == 1
            assert live_count(server) == 1
            generation = server.generation

            # The 2nd parent-side admission fires the fault: the update
            # is rejected before any worker is asked to apply it.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_update(server, insert_stmt(1))
            assert excinfo.value.code == 500
            assert "error" in json.loads(excinfo.value.read())
            assert server.generation == generation
            assert server.pool.pending_replay == 1  # only the good one
            assert live_count(server) == 1

            # Reads are untouched; the roster never lost a worker.
            assert server.pool.stats()["alive"] == 2
            assert not server.generation_mixed

    def test_compact_publish_fault_keeps_snapshot_and_overlay(self, snap, tmp_path):
        """A failed compaction publish is absorbed: the on-disk
        snapshot keeps its pre-compaction bytes, the delta overlay and
        replay log stay intact, and the next threshold crossing retries
        and succeeds."""
        import shutil

        live = str(tmp_path / "cchaos.snap")
        shutil.copy(snap, live)
        before_bytes = open(live, "rb").read()
        config = chaos_config(
            live, "compact.publish:io_error@1", workers=1, compact_threshold=1
        )
        with SparqlServer(config) as server:
            status, _ = post_update(server, insert_stmt(0))
            assert status == 200
            # The background compaction fires the fault and aborts.
            assert wait_for(lambda: not server._compacting)
            assert server.metrics.compactions_total == 0
            assert open(live, "rb").read() == before_bytes
            assert server.pool.pending_replay == 1
            assert live_count(server) == 1

            # Next update crosses the threshold again; the single-shot
            # fault is spent, so this publish lands atomically.
            status, _ = post_update(server, insert_stmt(1))
            assert status == 200
            assert wait_for(lambda: server.metrics.compactions_total >= 1)
            assert wait_for(lambda: server.pool.pending_replay == 0)
            assert live_count(server) == 2

            # A cold open of the published file sees the folded delta at
            # the served generation.
            cold = TripleStore.load(live)
            try:
                assert cold.generation == server.generation
                assert len(cold) == len(TripleStore.load(snap)) + 2
            finally:
                cold.close()
            assert_roster_heals(server)


# ----------------------------------------------------------------------
# crash recovery: kill -9 a real `repro serve` after acked updates
# ----------------------------------------------------------------------
CRASH_EX = "http://example.org/crash#"
CRASH_QUERY = (
    f"SELECT ?s WHERE {{ ?s <{CRASH_EX}tag> <{CRASH_EX}on> }} ORDER BY ?s"
)


def _crash_insert(i):
    return f"INSERT DATA {{ <{CRASH_EX}n{i}> <{CRASH_EX}tag> <{CRASH_EX}on> }}"


def _spawn_serve(data, wal, engine):
    import re
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", data,
            "--port", "0", "--workers", "1", "--timeout", "10",
            "--engine", engine, "--wal", wal, "--wal-fsync", "interval",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)/sparql", banner)
    assert match, f"no endpoint in banner {banner!r} (stderr: {proc.stderr.read() if proc.poll() is not None else '…'})"
    base = f"http://127.0.0.1:{match.group(1)}"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=5) as response:
                if json.loads(response.read()).get("status") in ("ok", "degraded"):
                    return proc, base
        except (urllib.error.URLError, ConnectionError):
            pass
        time.sleep(0.1)
    raise AssertionError("subprocess server never became healthy")


def _post_update_url(base, text, timeout=30):
    request = urllib.request.Request(
        base + "/update",
        data=text.encode("utf-8"),
        headers={"Content-Type": "application/sparql-update"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestCrashRecovery:
    """The acceptance criterion: kill -9 at any point after a 2xx ack
    loses zero updates.  A real ``repro serve`` subprocess is killed
    with SIGKILL mid-update-stream (one update still in flight), then
    restarted on the same snapshot + WAL; its answers must be
    byte-identical to an uncrashed in-process control that applied
    exactly the surviving updates."""

    @pytest.mark.parametrize(
        ("engine", "sorted_runs"),
        [("wco", True), ("wco", False), ("hashjoin", True), ("hashjoin", False)],
    )
    def test_kill9_after_ack_loses_zero_updates(
        self, snap, tmp_path, engine, sorted_runs
    ):
        import shutil
        import signal as signal_module
        import threading

        data = str(tmp_path / "crash.snap")
        shutil.copy(snap, data)
        wal = str(tmp_path / "crash.wal")

        proc, base = _spawn_serve(data, wal, engine)
        acked = []
        inflight_acked = []
        try:
            for i in range(4):
                status, outcome = _post_update_url(base, _crash_insert(i))
                assert status == 200 and outcome["changed"] is True
                acked.append(i)

            # One more update is on the wire when SIGKILL lands: the
            # contract makes no promise about it unless its 2xx ack
            # got back first.
            def racer():
                try:
                    status, _ = _post_update_url(base, _crash_insert(99))
                    if status == 200:
                        inflight_acked.append(99)
                except (urllib.error.URLError, ConnectionError, OSError):
                    pass

            thread = threading.Thread(target=racer)
            thread.start()
            os.kill(proc.pid, signal_module.SIGKILL)
            proc.wait(30)
            thread.join(15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)

        proc2, base2 = _spawn_serve(data, wal, engine)
        try:
            url = base2 + "/sparql?" + urllib.parse.urlencode({"query": CRASH_QUERY})
            with urllib.request.urlopen(url, timeout=60) as response:
                body = response.read()
            present = {
                row["s"]["value"]
                for row in json.loads(body)["results"]["bindings"]
            }
            must_have = {f"{CRASH_EX}n{i}" for i in acked + inflight_acked}
            may_have = must_have | {f"{CRASH_EX}n99"}
            assert must_have <= present <= may_have, (
                f"acked updates lost: wanted {sorted(must_have)}, "
                f"got {sorted(present)}"
            )

            # Byte-identical vs an uncrashed control: an in-process
            # engine over the original snapshot applying exactly the
            # updates the restarted server serves.
            control = SparqlUOEngine(
                TripleStore.load(snap),
                bgp_engine=engine,
                mode="full",
                sorted_runs=sorted_runs,
            )
            for i in sorted(
                int(value.rsplit("n", 1)[1]) for value in present
            ):
                control.update(_crash_insert(i))
            result = control.execute(CRASH_QUERY)
            assert body == to_json(result.variables, result.solutions).encode()
            control.store.close()

            # And the recovery is visible on /healthz: no torn tail
            # (the kill landed between appends), WAL depth intact.
            with urllib.request.urlopen(base2 + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            assert health["wal_depth"] == len(present)
            assert health["recovered_torn_tail"] is False
        finally:
            proc2.send_signal(15)
            try:
                proc2.wait(30)
            except Exception:
                proc2.kill()
                proc2.wait(30)
