"""SPARQL 1.1 UPDATE: parser, engine semantics, and write-path faults.

Covers the three supported operation forms (``INSERT DATA``,
``DELETE DATA``, ``DELETE/INSERT … WHERE``), the engine's template
instantiation rules, the write-path invalidation fix (no-op batches
must not bump the generation or drop derived caches), the no-thaw
guarantee (queries over pending writes still take the sorted-run
execution paths), and the two write-path fault sites
(``delta.apply``, ``compact.publish``).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import SparqlUOEngine, UpdateResult
from repro.faults import InjectedFaultError
from repro.rdf import IRI, Triple
from repro.sparql import (
    DeleteData,
    InsertData,
    ModifyUpdate,
    SparqlSyntaxError,
    UnsupportedFeatureError,
    parse_update,
)
from repro.storage import DeltaOverlayIndexes, TripleStore

EX = "http://example.org/u#"


def _triples(n=4):
    return [
        Triple(IRI(f"{EX}s{i}"), IRI(f"{EX}linked"), IRI(f"{EX}o{i}")) for i in range(n)
    ]


@pytest.fixture
def frozen_store(tmp_path):
    """A snapshot-backed (frozen) store — the production serving shape."""
    path = str(tmp_path / "u.snap")
    TripleStore.from_triples(_triples()).save(path)
    store = TripleStore.load(path)
    yield store
    store.close()


@pytest.fixture(autouse=True)
def _disarm_after():
    yield
    faults.disarm()


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class TestParseUpdate:
    def test_insert_data(self):
        request = parse_update(
            f'INSERT DATA {{ <{EX}a> <{EX}p> "x" . <{EX}b> <{EX}p> <{EX}c> }}'
        )
        assert len(request.operations) == 1
        op = request.operations[0]
        assert isinstance(op, InsertData)
        assert len(op.triples) == 2

    def test_delete_data(self):
        request = parse_update(f"DELETE DATA {{ <{EX}a> <{EX}p> <{EX}b> }}")
        assert isinstance(request.operations[0], DeleteData)

    def test_modify(self):
        request = parse_update(
            f"PREFIX ex: <{EX}> "
            "DELETE { ?s ex:old ?o } INSERT { ?s ex:new ?o } "
            "WHERE { ?s ex:old ?o }"
        )
        op = request.operations[0]
        assert isinstance(op, ModifyUpdate)
        assert len(op.delete_template) == 1
        assert len(op.insert_template) == 1

    def test_delete_where_shorthand(self):
        request = parse_update(f"DELETE WHERE {{ ?s <{EX}p> ?o }}")
        op = request.operations[0]
        assert isinstance(op, ModifyUpdate)
        assert list(op.insert_template) == []
        # The WHERE patterns double as the delete template.
        assert len(op.delete_template) == 1

    def test_insert_only_modify(self):
        request = parse_update(
            f"INSERT {{ ?s <{EX}copy> ?o }} WHERE {{ ?s <{EX}p> ?o }}"
        )
        op = request.operations[0]
        assert isinstance(op, ModifyUpdate)
        assert list(op.delete_template) == []

    def test_multiple_operations_and_trailing_semicolon(self):
        request = parse_update(
            f"INSERT DATA {{ <{EX}a> <{EX}p> <{EX}b> }} ; "
            f"DELETE DATA {{ <{EX}a> <{EX}p> <{EX}b> }} ;"
        )
        assert len(request.operations) == 2

    def test_variables_in_data_block_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_update(f"INSERT DATA {{ ?s <{EX}p> <{EX}b> }}")

    def test_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_update("INSERT DATA { <u:a> <u:b> ")
        with pytest.raises(SparqlSyntaxError):
            parse_update("SELECT ?x WHERE { ?x ?y ?z }")

    @pytest.mark.parametrize(
        "text",
        [
            "LOAD <http://example.org/data.nt>",
            f"CLEAR GRAPH <{EX}g>",
            f"WITH <{EX}g> DELETE {{ ?s ?p ?o }} WHERE {{ ?s ?p ?o }}",
            f"INSERT {{ ?s ?p ?o }} USING <{EX}g> WHERE {{ ?s ?p ?o }}",
            f"INSERT DATA {{ GRAPH <{EX}g> {{ <{EX}a> <{EX}p> <{EX}b> }} }}",
        ],
    )
    def test_graph_management_unsupported(self, text):
        with pytest.raises(UnsupportedFeatureError):
            parse_update(text)


# ----------------------------------------------------------------------
# engine semantics
# ----------------------------------------------------------------------
class TestEngineUpdate:
    def test_insert_data_end_to_end(self, frozen_store):
        engine = SparqlUOEngine(frozen_store)
        before = frozen_store.generation
        result = engine.update(
            f"INSERT DATA {{ <{EX}s0> <{EX}linked> <{EX}extra> }}"
        )
        assert isinstance(result, UpdateResult)
        assert result.added == 1 and result.removed == 0
        assert result.generation == before + 1
        assert len(engine.execute(f"SELECT ?o WHERE {{ <{EX}s0> <{EX}linked> ?o }}")) == 2

    def test_modify_rewrites_matches(self, frozen_store):
        engine = SparqlUOEngine(frozen_store)
        result = engine.update(
            f"DELETE {{ ?s <{EX}linked> ?o }} INSERT {{ ?o <{EX}linked> ?s }} "
            f"WHERE {{ ?s <{EX}linked> ?o }}"
        )
        assert result.added == 4 and result.removed == 4
        rows = engine.execute(f"SELECT ?s WHERE {{ ?s <{EX}linked> <{EX}s1> }}")
        assert len(rows) == 1

    def test_delete_where(self, frozen_store):
        engine = SparqlUOEngine(frozen_store)
        result = engine.update(f"DELETE WHERE {{ ?s <{EX}linked> ?o }}")
        assert result.removed == 4
        assert len(frozen_store) == 0

    def test_invalid_instantiations_are_dropped(self, frozen_store):
        engine = SparqlUOEngine(frozen_store)
        # ?o binds to IRIs here; inserting them as subjects is fine, but
        # a *literal* in subject position must be silently skipped, not
        # fail the whole operation (SPARQL 1.1 §3.1.3).
        engine.update(f'INSERT DATA {{ <{EX}s9> <{EX}label> "a literal" }}')
        result = engine.update(
            f"INSERT {{ ?o <{EX}tag> <{EX}t> }} WHERE {{ ?s <{EX}label> ?o }}"
        )
        assert result.added == 0 and result.removed == 0

    def test_sequence_applies_in_order(self, frozen_store):
        engine = SparqlUOEngine(frozen_store)
        result = engine.update(
            f"INSERT DATA {{ <{EX}a> <{EX}p> <{EX}b> }} ; "
            f"DELETE DATA {{ <{EX}a> <{EX}p> <{EX}b> }}"
        )
        assert result.added == 1 and result.removed == 1
        assert result.operations == 2
        assert len(engine.execute(f"SELECT ?o WHERE {{ <{EX}a> <{EX}p> ?o }}")) == 0

    @pytest.mark.parametrize("bgp_engine", ["wco", "hashjoin"])
    def test_reads_over_pending_writes_stay_on_sorted_runs(self, bgp_engine):
        """The no-thaw guarantee: after live writes the store still
        serves a frozen-shaped index and queries still take the
        merge/gallop execution paths — over results that already
        include the pending writes."""
        triples = []
        for i in range(40):
            s = IRI(f"{EX}n{i}")
            triples.append(Triple(s, IRI(f"{EX}p"), IRI(f"{EX}hub")))
            if i % 4 == 0:
                triples.append(Triple(s, IRI(f"{EX}r"), IRI(f"{EX}flag")))
        store = TripleStore.from_triples(triples).freeze()
        engine = SparqlUOEngine(store, bgp_engine=bgp_engine)
        engine.update(
            f"INSERT DATA {{ <{EX}extra> <{EX}p> <{EX}hub> . "
            f"<{EX}extra> <{EX}r> <{EX}flag> }} ; "
            f"DELETE DATA {{ <{EX}n0> <{EX}r> <{EX}flag> }}"
        )
        assert isinstance(store.indexes, DeltaOverlayIndexes)
        result = engine.execute(
            f"SELECT ?x WHERE {{ ?x <{EX}p> <{EX}hub> . ?x <{EX}r> <{EX}flag> }}"
        )
        # 10 flagged nodes originally, minus the tombstoned n0, plus
        # the pending-insert "extra" node.
        assert len(result) == 10
        values = {row["x"].value for row in result.solutions}
        assert f"{EX}extra" in values and f"{EX}n0" not in values
        counters = result.exec_counters
        sorted_run_work = (
            counters.get("merge_joins", 0)
            + counters.get("gallop_probes", 0)
            + counters.get("candidate_intersections", 0)
        )
        assert sorted_run_work > 0, counters
        assert counters.get("hash_joins", 0) == 0, counters


# ----------------------------------------------------------------------
# write-path invalidation (regression)
# ----------------------------------------------------------------------
class TestWriteInvalidation:
    def test_duplicate_insert_does_not_bump_generation(self, frozen_store):
        generation = frozen_store.generation
        stats = frozen_store.statistics
        assert frozen_store.add(_triples()[0]) is False
        assert frozen_store.add_all(_triples()) == 0
        # No visibility change → same generation, derived caches kept.
        assert frozen_store.generation == generation
        assert frozen_store.statistics is stats

    def test_missing_delete_does_not_bump_generation(self, frozen_store):
        generation = frozen_store.generation
        absent = Triple(IRI(f"{EX}ghost"), IRI(f"{EX}linked"), IRI(f"{EX}ghost"))
        assert frozen_store.remove(absent) is False
        assert frozen_store.remove_all([absent]) == 0
        assert frozen_store.generation == generation

    def test_effective_write_bumps_and_invalidates(self, frozen_store):
        generation = frozen_store.generation
        stats = frozen_store.statistics
        added, removed = frozen_store.apply_update(
            inserts=[Triple(IRI(f"{EX}new"), IRI(f"{EX}linked"), IRI(f"{EX}new"))]
        )
        assert (added, removed) == (1, 0)
        assert frozen_store.generation == generation + 1
        assert frozen_store.statistics is not stats

    def test_mixed_batch_counts_only_effective_rows(self, frozen_store):
        triples = _triples()
        added, removed = frozen_store.apply_update(
            inserts=triples,  # duplicates, except the one just deleted
            deletes=[triples[0], triples[0]],  # second delete is a miss
        )
        # Deletes apply first (SPARQL 1.1 order): the delete lands once,
        # then the re-insert of the same triple is the only add.
        assert (added, removed) == (1, 1)
        assert len(frozen_store) == 4


# ----------------------------------------------------------------------
# write-path fault sites
# ----------------------------------------------------------------------
class TestWriteFaults:
    def test_delta_apply_fault_rejects_batch_atomically(self, frozen_store):
        generation = frozen_store.generation
        size = len(frozen_store)
        faults.arm("delta.apply:io_error@1")
        with pytest.raises(InjectedFaultError):
            frozen_store.apply_update(
                inserts=[Triple(IRI(f"{EX}x"), IRI(f"{EX}linked"), IRI(f"{EX}y"))]
            )
        faults.disarm()
        # The fault fires before admission: nothing landed.
        assert frozen_store.generation == generation
        assert len(frozen_store) == size
        assert frozen_store.pending_delta == (0, 0)

    def test_compact_publish_fault_preserves_file_and_overlay(self, tmp_path):
        path = str(tmp_path / "c.snap")
        TripleStore.from_triples(_triples()).save(path)
        store = TripleStore.load(path)
        try:
            store.add(Triple(IRI(f"{EX}n"), IRI(f"{EX}linked"), IRI(f"{EX}n")))
            assert store.pending_delta == (1, 0)
            faults.arm("compact.publish:io_error@1")
            with pytest.raises(InjectedFaultError):
                store.compact(path)
            faults.disarm()
            # The overlay still holds the pending write …
            assert store.pending_delta == (1, 0)
            assert len(store) == 5
            # … and the on-disk snapshot is the untouched pre-compaction
            # generation, fully loadable.
            cold = TripleStore.load(path)
            try:
                assert len(cold) == 4
            finally:
                cold.close()
            # Retry after the fault clears: publish succeeds, the delta
            # folds, and a cold load sees the write.
            store.compact(path)
            assert store.pending_delta == (0, 0)
            cold = TripleStore.load(path)
            try:
                assert len(cold) == 5
                assert cold.generation == store.generation
            finally:
                cold.close()
        finally:
            store.close()
