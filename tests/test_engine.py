"""Unit tests for the SparqlUOEngine facade."""

import pytest

from repro.core import ExecutionMode, SparqlUOEngine
from repro.sparql import execute_query, parse_query

PREZ_QUERY = """
SELECT ?x ?name WHERE {
  ?x <http://example.org/wikiPageWikiLink> <http://example.org/President_of_the_United_States> .
  { ?x <http://example.org/foaf_name> ?name } UNION { ?x <http://example.org/rdfs_label> ?name }
  OPTIONAL { ?x <http://example.org/sameAs> ?same }
}
"""

ALL_MODES = ["base", "tt", "cp", "full"]
ALL_ENGINES = ["wco", "hashjoin"]


class TestModes:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("bgp_engine", ALL_ENGINES)
    def test_all_modes_match_reference(
        self, presidents_dataset, presidents_store, mode, bgp_engine
    ):
        engine = SparqlUOEngine(presidents_store, bgp_engine=bgp_engine, mode=mode)
        result = engine.execute(PREZ_QUERY)
        expected = execute_query(parse_query(PREZ_QUERY), presidents_dataset)
        assert result.solutions == expected

    def test_mode_enum_accepted(self, presidents_store):
        engine = SparqlUOEngine(presidents_store, mode=ExecutionMode.TT)
        assert engine.mode is ExecutionMode.TT

    def test_mode_properties(self):
        assert ExecutionMode.BASE.transforms is False
        assert ExecutionMode.BASE.prunes is False
        assert ExecutionMode.TT.transforms is True
        assert ExecutionMode.CP.prunes is True
        assert ExecutionMode.FULL.transforms and ExecutionMode.FULL.prunes

    def test_unknown_engine_rejected(self, presidents_store):
        with pytest.raises(ValueError):
            SparqlUOEngine(presidents_store, bgp_engine="mystery")

    def test_engine_aliases(self, presidents_store):
        assert SparqlUOEngine(presidents_store, bgp_engine="gstore").bgp_engine.name == "wco"
        assert SparqlUOEngine(presidents_store, bgp_engine="jena").bgp_engine.name == "hashjoin"

    def test_base_mode_does_not_transform(self, presidents_store):
        engine = SparqlUOEngine(presidents_store, mode="base")
        result = engine.execute(PREZ_QUERY)
        assert result.transform_report is None

    def test_tt_mode_reports_transformations(self, presidents_store):
        engine = SparqlUOEngine(presidents_store, mode="tt")
        result = engine.execute(PREZ_QUERY)
        assert result.transform_report is not None
        assert result.transform_report.merges >= 1

    def test_optimized_join_space_not_worse(self, presidents_store):
        base = SparqlUOEngine(presidents_store, mode="base").execute(PREZ_QUERY)
        full = SparqlUOEngine(presidents_store, mode="full").execute(PREZ_QUERY)
        assert full.join_space <= base.join_space


class TestQueryResult:
    def test_iteration_and_len(self, presidents_store):
        result = SparqlUOEngine(presidents_store, mode="full").execute(PREZ_QUERY)
        rows = list(result)
        assert len(rows) == len(result) == 5

    def test_projection_variables(self, presidents_store):
        result = SparqlUOEngine(presidents_store, mode="full").execute(PREZ_QUERY)
        assert result.variables == ["x", "name"]
        for row in result:
            assert set(row) <= {"x", "name"}

    def test_select_all_projects_every_variable(self, presidents_store):
        query = PREZ_QUERY.replace("SELECT ?x ?name", "SELECT *")
        result = SparqlUOEngine(presidents_store, mode="full").execute(query)
        assert "same" in result.variables

    def test_timings_present(self, presidents_store):
        result = SparqlUOEngine(presidents_store, mode="full").execute(PREZ_QUERY)
        assert result.parse_seconds >= 0
        assert result.transform_seconds >= 0
        assert result.execute_seconds > 0
        assert result.total_seconds >= result.execute_seconds

    def test_accepts_parsed_query(self, presidents_store):
        parsed = parse_query(PREZ_QUERY)
        result = SparqlUOEngine(presidents_store, mode="full").execute(parsed)
        assert len(result) == 5


class TestTimeout:
    #: Cartesian triple product: far too large to finish, so any
    #: sub-second deadline must fire through the checkpoint hooks.
    SLOW_QUERY = "SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }"

    @pytest.mark.parametrize("bgp_engine", ALL_ENGINES)
    def test_deadline_aborts_runaway_query(self, presidents_store, bgp_engine):
        import time

        from repro.sparql.errors import QueryTimeoutError

        engine = SparqlUOEngine(presidents_store, bgp_engine=bgp_engine, mode="full")
        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            engine.execute(self.SLOW_QUERY, timeout=0.2)
        # Cooperative, so not instant — but it must fire within a small
        # multiple of the budget, not run the query to completion.
        assert time.perf_counter() - started < 5.0

    @pytest.mark.parametrize("bgp_engine", ALL_ENGINES)
    def test_generous_deadline_changes_nothing(self, presidents_store, bgp_engine):
        engine = SparqlUOEngine(presidents_store, bgp_engine=bgp_engine, mode="full")
        timed = engine.execute(PREZ_QUERY, timeout=60.0)
        plain = engine.execute(PREZ_QUERY)
        assert timed.solutions == plain.solutions

    def test_caller_checkpoint_cancels(self, presidents_store):
        class Cancelled(Exception):
            pass

        calls = {"n": 0}

        def cancel_after_two():
            calls["n"] += 1
            if calls["n"] > 2:
                raise Cancelled

        engine = SparqlUOEngine(presidents_store, mode="full")
        with pytest.raises(Cancelled):
            engine.execute(PREZ_QUERY, checkpoint=cancel_after_two)

    def test_timeout_error_is_catchable_as_sparql_error(self, presidents_store):
        from repro.sparql.errors import QueryTimeoutError, SparqlError

        assert issubclass(QueryTimeoutError, SparqlError)
        engine = SparqlUOEngine(presidents_store, mode="base")
        with pytest.raises(SparqlError):
            engine.execute(self.SLOW_QUERY, timeout=0.05)


class TestExplain:
    def test_explain_shows_plan(self, presidents_store):
        engine = SparqlUOEngine(presidents_store, mode="tt")
        text = engine.explain(PREZ_QUERY)
        assert "mode=tt" in text
        assert "GROUP" in text and "UNION" in text

    def test_for_dataset_constructor(self, presidents_dataset):
        engine = SparqlUOEngine.for_dataset(presidents_dataset, mode="base")
        assert len(engine.execute(PREZ_QUERY)) == 5
