"""End-to-end integration tests: the paper's running examples and the
mode-comparison claims, exercised through the public API only."""

import pytest

import repro
from repro import Dataset, SparqlUOEngine, parse_ntriples_string, serialize_ntriples
from repro.baselines import LBREngine
from repro.datasets import (
    INTRO_OPTIONAL_QUERY,
    INTRO_UNION_QUERY,
    LUBM_QUERIES,
    generate_dbpedia,
    generate_lubm,
)
from repro.storage import TripleStore


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_ntriples_pipeline(self):
        text = (
            "<http://a> <http://p> <http://b> .\n"
            '<http://a> <http://name> "thing" .\n'
        )
        dataset = Dataset(parse_ntriples_string(text))
        engine = SparqlUOEngine.for_dataset(dataset, mode="full")
        result = engine.execute("SELECT ?n WHERE { ?x <http://name> ?n }")
        assert len(result) == 1
        assert serialize_ntriples(dataset).count("\n") == 2


class TestIntroExamples:
    """Figure 1's motivating queries on the DBpedia-like dataset."""

    @pytest.fixture(scope="class")
    def engine(self):
        store = TripleStore.from_dataset(generate_dbpedia(articles=400))
        return SparqlUOEngine(store, mode="full")

    def test_union_collects_both_name_representations(self, engine):
        result = engine.execute(INTRO_UNION_QUERY)
        assert len(result) > 0
        assert set(result.variables) == {"x", "name"}

    def test_optional_retains_presidents_without_sameas(self, engine):
        result = engine.execute(INTRO_OPTIONAL_QUERY)
        assert len(result) > 0
        bound = sum(1 for row in result if "same" in row)
        unbound = sum(1 for row in result if "same" not in row)
        # Incompleteness: some presidents have references, some do not.
        assert bound > 0 and unbound > 0


class TestModeComparison:
    """§7.1's qualitative claims on a real benchmark query."""

    @pytest.fixture(scope="class")
    def store(self):
        return TripleStore.from_dataset(generate_lubm(universities=1))

    def test_all_modes_agree_on_q13(self, store):
        results = {}
        for mode in ("base", "tt", "cp", "full"):
            engine = SparqlUOEngine(store, bgp_engine="wco", mode=mode)
            results[mode] = engine.execute(LUBM_QUERIES["q1.3"])
        reference = results["base"].solutions
        for mode, result in results.items():
            assert result.solutions == reference, mode

    def test_optimized_modes_shrink_join_space_on_q13(self, store):
        """q1.3 is the paper's CP-effective showcase: a selective anchor
        feeding nested OPTIONALs."""
        base = SparqlUOEngine(store, bgp_engine="wco", mode="base").execute(
            LUBM_QUERIES["q1.3"]
        )
        full = SparqlUOEngine(store, bgp_engine="wco", mode="full").execute(
            LUBM_QUERIES["q1.3"]
        )
        assert full.join_space < base.join_space

    def test_lbr_agrees_with_full_on_optional_queries(self, store):
        for name in ("q2.4", "q2.6"):
            full = SparqlUOEngine(store, bgp_engine="wco", mode="full").execute(
                LUBM_QUERIES[name]
            )
            lbr = LBREngine(store).execute(LUBM_QUERIES[name])
            assert lbr.solutions == full.solutions, name


class TestBothEnginesOnBenchmarks:
    @pytest.fixture(scope="class")
    def store(self):
        return TripleStore.from_dataset(generate_lubm(universities=1))

    @pytest.mark.parametrize("name", ["q1.2", "q1.3", "q1.5", "q2.4"])
    def test_wco_and_hashjoin_agree(self, store, name):
        wco = SparqlUOEngine(store, bgp_engine="wco", mode="full")
        hashjoin = SparqlUOEngine(store, bgp_engine="hashjoin", mode="full")
        assert (
            wco.execute(LUBM_QUERIES[name]).solutions
            == hashjoin.execute(LUBM_QUERIES[name]).solutions
        ), name
