"""Unit tests for the TripleStore facade."""

import pytest

from repro.rdf import Dataset, IRI, Triple, TriplePattern, Variable
from repro.storage import MISSING_ID, TripleStore

A, B, C, P, Q = (IRI(f"http://x/{n}") for n in "abcpq")
X, Y = Variable("x"), Variable("y")


@pytest.fixture
def store():
    return TripleStore.from_triples(
        [Triple(A, P, B), Triple(A, P, C), Triple(B, Q, A), Triple(A, Q, A)]
    )


class TestLoading:
    def test_from_dataset(self):
        d = Dataset([Triple(A, P, B)])
        assert len(TripleStore.from_dataset(d)) == 1

    def test_add_all_counts_new_only(self, store):
        added = store.add_all([Triple(A, P, B), Triple(C, P, A)])
        assert added == 1

    def test_add_invalidates_statistics(self, store):
        before = store.statistics.total_triples
        store.add(Triple(C, Q, C))
        assert store.statistics.total_triples == before + 1


class TestPatternEncoding:
    def test_variables_become_names(self, store):
        encoded = store.encode_pattern(TriplePattern(X, P, Y))
        assert encoded[0] == "x" and encoded[2] == "y"
        assert isinstance(encoded[1], int)

    def test_unknown_constant_becomes_missing(self, store):
        encoded = store.encode_pattern(TriplePattern(IRI("http://nowhere"), P, X))
        assert encoded[0] == MISSING_ID


class TestMatching:
    def test_match_returns_terms(self, store):
        results = set(store.match(TriplePattern(A, P, X)))
        assert results == {Triple(A, P, B), Triple(A, P, C)}

    def test_match_unknown_constant_is_empty(self, store):
        assert list(store.match(TriplePattern(IRI("http://nowhere"), P, X))) == []

    def test_repeated_variable_enforced(self, store):
        # ?x Q ?x matches only A Q A.
        results = list(store.match(TriplePattern(X, Q, X)))
        assert results == [Triple(A, Q, A)]

    def test_count_pattern(self, store):
        assert store.count_pattern(store.encode_pattern(TriplePattern(A, P, X))) == 2
        assert store.count_pattern(store.encode_pattern(TriplePattern(X, Q, Y))) == 2

    def test_count_repeated_variable(self, store):
        assert store.count_pattern(store.encode_pattern(TriplePattern(X, Q, X))) == 1

    def test_count_missing_constant(self, store):
        pattern = store.encode_pattern(TriplePattern(IRI("http://nowhere"), P, X))
        assert store.count_pattern(pattern) == 0

    def test_all_variable_pattern_scans_everything(self, store):
        z = Variable("z")
        assert len(list(store.match(TriplePattern(X, z, Y)))) == 4


class TestDecoding:
    def test_decode_lookup_round_trip(self, store):
        term_id = store.lookup(A)
        assert store.decode(term_id) == A
