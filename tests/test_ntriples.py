"""Unit and property tests for the N-Triples parser/serializer."""

import pytest
from hypothesis import given

from repro.rdf import (
    BlankNode,
    Dataset,
    IRI,
    Literal,
    NTriplesParseError,
    Triple,
    parse_ntriples_string,
    serialize_ntriples,
)

from .strategies import datasets


class TestParse:
    def test_simple_triple(self):
        (t,) = parse_ntriples_string("<http://a> <http://b> <http://c> .")
        assert t == Triple(IRI("http://a"), IRI("http://b"), IRI("http://c"))

    def test_literal_object(self):
        (t,) = parse_ntriples_string('<http://a> <http://b> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        (t,) = parse_ntriples_string('<http://a> <http://b> "hi"@en .')
        assert t.object == Literal("hi", language="en")

    def test_typed_literal(self):
        text = '<http://a> <http://b> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        (t,) = parse_ntriples_string(text)
        assert t.object.datatype.endswith("integer")

    def test_blank_nodes(self):
        (t,) = parse_ntriples_string("_:x <http://b> _:y .")
        assert t.subject == BlankNode("x") and t.object == BlankNode("y")

    def test_escapes(self):
        (t,) = parse_ntriples_string('<http://a> <http://b> "a\\"b\\nc\\\\d" .')
        assert t.object.lexical == 'a"b\nc\\d'

    def test_unicode_escape(self):
        (t,) = parse_ntriples_string('<http://a> <http://b> "\\u00e9" .')
        assert t.object.lexical == "é"

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n<http://a> <http://b> <http://c> .\n"
        assert len(list(parse_ntriples_string(text))) == 1

    def test_trailing_comment_after_dot(self):
        (t,) = parse_ntriples_string("<http://a> <http://b> <http://c> . # note")
        assert t.predicate == IRI("http://b")


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<http://a> <http://b> <http://c>",  # missing dot
            "<http://a> <http://b> .",  # missing object
            '"lit" <http://b> <http://c> .',  # literal subject
            "<http://a> <http://b> <http://c> . extra",  # trailing junk
            "<http://a <http://b> <http://c> .",  # unterminated IRI
            '<http://a> <http://b> "open .',  # unterminated string
        ],
    )
    def test_malformed_lines(self, bad):
        with pytest.raises(NTriplesParseError):
            list(parse_ntriples_string(bad))

    def test_error_carries_line_number(self):
        text = "<http://a> <http://b> <http://c> .\nbroken line\n"
        with pytest.raises(NTriplesParseError) as excinfo:
            list(parse_ntriples_string(text))
        assert excinfo.value.line_number == 2


class TestRoundTrip:
    def test_serialize_is_sorted_and_terminated(self):
        d = Dataset(
            [
                Triple(IRI("http://b"), IRI("http://p"), IRI("http://o")),
                Triple(IRI("http://a"), IRI("http://p"), IRI("http://o")),
            ]
        )
        text = serialize_ntriples(d)
        lines = text.strip().split("\n")
        assert lines == sorted(lines)
        assert text.endswith("\n")

    def test_empty_serialization(self):
        assert serialize_ntriples([]) == ""

    @given(datasets())
    def test_parse_serialize_round_trip(self, dataset):
        text = serialize_ntriples(dataset)
        reparsed = Dataset(parse_ntriples_string(text))
        assert set(reparsed) == set(dataset)
