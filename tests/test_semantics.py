"""Unit tests for the reference evaluator (Definition 7)."""

from repro.rdf import Dataset, IRI, Literal, Triple, TriplePattern, Variable
from repro.sparql import (
    Bag,
    evaluate_group,
    evaluate_triple_pattern,
    execute_query,
    parse_query,
)

EX = "http://x/"
A, B, C = IRI(EX + "a"), IRI(EX + "b"), IRI(EX + "c")
P, Q = IRI(EX + "p"), IRI(EX + "q")
X, Y = Variable("x"), Variable("y")


def dataset():
    return Dataset(
        [
            Triple(A, P, B),
            Triple(A, P, C),
            Triple(B, Q, C),
            Triple(A, Q, A),
        ]
    )


class TestTriplePatternEvaluation:
    def test_bindings(self):
        bag = evaluate_triple_pattern(TriplePattern(A, P, X), dataset())
        assert bag == Bag([{"x": B}, {"x": C}])

    def test_ground_pattern_present(self):
        bag = evaluate_triple_pattern(TriplePattern(A, P, B), dataset())
        assert bag == Bag.identity()

    def test_ground_pattern_absent(self):
        bag = evaluate_triple_pattern(TriplePattern(B, P, A), dataset())
        assert len(bag) == 0

    def test_repeated_variable(self):
        bag = evaluate_triple_pattern(TriplePattern(X, Q, X), dataset())
        assert bag == Bag([{"x": A}])


class TestOperators:
    def test_and_joins(self):
        q = parse_query(f"SELECT * WHERE {{ <{EX}a> <{EX}p> ?x . ?x <{EX}q> ?y }}")
        assert execute_query(q, dataset()) == Bag([{"x": B, "y": C}])

    def test_union_preserves_duplicates(self):
        # Both branches produce {x: B}, bag union keeps both.
        q = parse_query(
            f"SELECT * WHERE {{ {{ <{EX}a> <{EX}p> ?x }} UNION {{ <{EX}a> <{EX}p> ?x }} }}"
        )
        result = execute_query(q, dataset())
        assert len(result) == 4  # two solutions × two branches

    def test_optional_extends_and_keeps(self):
        q = parse_query(f"SELECT * WHERE {{ <{EX}a> <{EX}p> ?x OPTIONAL {{ ?x <{EX}q> ?y }} }}")
        assert execute_query(q, dataset()) == Bag([{"x": B, "y": C}, {"x": C}])

    def test_leading_optional(self):
        q = parse_query(f"SELECT * WHERE {{ OPTIONAL {{ <{EX}a> <{EX}p> ?x }} }}")
        assert execute_query(q, dataset()) == Bag([{"x": B}, {"x": C}])

    def test_empty_where(self):
        q = parse_query("SELECT * WHERE { }")
        assert execute_query(q, dataset()) == Bag.identity()

    def test_projection(self):
        q = parse_query(f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}")
        result = execute_query(q, dataset())
        assert result == Bag([{"x": A}, {"x": A}])  # duplicates preserved

    def test_failed_join_is_empty(self):
        q = parse_query(f"SELECT * WHERE {{ <{EX}b> <{EX}p> ?x . ?x <{EX}q> ?y }}")
        assert len(execute_query(q, dataset())) == 0

    def test_nested_optional_semantics(self):
        # (A OPT (B OPT C)): inner optional evaluated inside the group.
        q = parse_query(
            f"SELECT * WHERE {{ <{EX}a> <{EX}p> ?x "
            f"OPTIONAL {{ ?x <{EX}q> ?y OPTIONAL {{ ?y <{EX}p> ?z }} }} }}"
        )
        result = execute_query(q, dataset())
        assert result == Bag([{"x": B, "y": C}, {"x": C}])
