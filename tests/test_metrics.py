"""Unit tests for Count_BGP and Depth (§7.1), checked against the
paper's Tables 3–4 where our maximal-coalescing definition agrees."""

import pytest

from repro.core import count_bgp, depth
from repro.datasets import DBPEDIA_QUERIES, LUBM_QUERIES
from repro.sparql import parse_group, parse_query


class TestDepthDefinition:
    def test_flat_group(self):
        assert depth(parse_group("{ ?x ?p ?y }")) == 1

    def test_optional_adds_level(self):
        assert depth(parse_group("{ ?x ?p ?y OPTIONAL { ?y ?q ?z } }")) == 2

    def test_union_branches_add_level(self):
        assert depth(parse_group("{ { ?x ?p ?y } UNION { ?x ?q ?y } }")) == 2

    def test_nested_optionals(self):
        text = "{ ?x ?p ?y OPTIONAL { ?y ?q ?z OPTIONAL { ?z ?r ?w } } }"
        assert depth(parse_group(text)) == 3

    def test_max_across_siblings(self):
        text = "{ OPTIONAL { ?a ?p ?b } OPTIONAL { ?a ?q ?b OPTIONAL { ?b ?r ?c } } }"
        assert depth(parse_group(text)) == 3


class TestCountBGPDefinition:
    def test_coalesced_triples_count_once(self):
        assert count_bgp(parse_group("{ ?x <http://p/1> ?y . ?y <http://p/2> ?z }")) == 1

    def test_disconnected_triples_count_separately(self):
        assert count_bgp(parse_group("{ ?x <http://p/1> ?y . ?a <http://p/2> ?b }")) == 2

    def test_union_branches_counted(self):
        assert count_bgp(parse_group("{ { ?x ?p ?y } UNION { ?x ?q ?y } }")) == 2

    def test_optional_body_counted(self):
        assert count_bgp(parse_group("{ ?x <http://p/1> ?y OPTIONAL { ?a <http://p/2> ?b } }")) == 2


#: Rows of Table 3 (LUBM) that our construction reproduces exactly.
LUBM_EXPECTED = {
    "q1.1": (9, 2),
    "q1.2": (3, 2),
    "q1.3": (4, 4),
    "q1.4": (4, 4),
    "q1.5": (6, 3),
    "q1.6": (9, 3),
    "q2.4": (2, 2),
    "q2.5": (2, 2),
    "q2.6": (2, 2),
}

#: Rows of Table 4 (DBpedia); q1.2's BGP count differs by one from the
#: paper (we count the coalesced top-level BGP plus four UNION-branch /
#: OPTIONAL BGPs; see EXPERIMENTS.md).
DBPEDIA_EXPECTED = {
    "q1.1": (6, 2),
    "q1.3": (5, 5),
    "q1.4": (7, 5),
    "q1.5": (6, 3),
    "q1.6": (10, 4),
    "q2.2": (2, 2),
    "q2.3": (2, 2),
    "q2.5": (2, 2),
    "q2.6": (9, 2),
}


class TestPaperTables:
    @pytest.mark.parametrize("name,expected", sorted(LUBM_EXPECTED.items()))
    def test_table3_lubm(self, name, expected):
        query = parse_query(LUBM_QUERIES[name])
        assert (count_bgp(query), depth(query)) == expected

    @pytest.mark.parametrize("name,expected", sorted(DBPEDIA_EXPECTED.items()))
    def test_table4_dbpedia(self, name, expected):
        query = parse_query(DBPEDIA_QUERIES[name])
        assert (count_bgp(query), depth(query)) == expected
