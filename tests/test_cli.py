"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.rdf import Dataset, IRI, Literal, dump_ntriples


@pytest.fixture
def data_file(tmp_path):
    d = Dataset()
    EX = "http://x/"
    for i in range(10):
        d.add_spo(IRI(EX + f"s{i}"), IRI(EX + "p"), IRI(EX + f"o{i % 3}"))
        d.add_spo(IRI(EX + f"s{i}"), IRI(EX + "name"), Literal(f"n{i}"))
    path = tmp_path / "data.nt"
    dump_ntriples(d, str(path))
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestQuery:
    def test_basic_query(self, data_file):
        code, output = run(
            ["query", data_file, "SELECT ?x WHERE { ?x <http://x/p> <http://x/o0> }"]
        )
        assert code == 0
        lines = output.strip().split("\n")
        assert lines[0] == "?x"
        assert len(lines) == 5  # header + 4 matches (s0, s3, s6, s9)

    def test_query_from_file(self, data_file, tmp_path):
        query_path = tmp_path / "q.rq"
        query_path.write_text("SELECT ?n WHERE { ?x <http://x/name> ?n }")
        code, output = run(["query", data_file, "-f", str(query_path)])
        assert code == 0
        assert output.count("\n") == 11  # header + 10 rows

    def test_limit(self, data_file):
        code, output = run(
            ["query", data_file, "SELECT ?n WHERE { ?x <http://x/name> ?n }", "--limit", "3"]
        )
        assert code == 0
        assert "more rows" in output

    def test_unbound_optional_prints_empty_cell(self, data_file):
        query = (
            "SELECT ?x ?n WHERE { ?x <http://x/p> <http://x/o0> "
            "OPTIONAL { ?x <http://x/missing> ?n } }"
        )
        code, output = run(["query", data_file, query])
        assert code == 0
        body = [line for line in output.splitlines()[1:] if line]
        assert body
        assert all(line.endswith("\t") for line in body)

    def test_stats_flag(self, data_file):
        code, output = run(
            ["query", data_file, "SELECT ?x WHERE { ?x <http://x/p> ?o }", "--stats"]
        )
        assert code == 0
        assert "join space" in output

    def test_explain_flag(self, data_file):
        code, output = run(
            ["query", data_file, "SELECT ?x WHERE { ?x <http://x/p> ?o }", "--explain"]
        )
        assert code == 0
        assert "GROUP" in output and "BGP" in output

    def test_all_modes_and_engines(self, data_file):
        for mode in ("base", "tt", "cp", "full"):
            for engine in ("wco", "hashjoin"):
                code, output = run(
                    [
                        "query", data_file,
                        "SELECT ?x WHERE { ?x <http://x/p> ?o }",
                        "--mode", mode, "--engine", engine,
                    ]
                )
                assert code == 0
                assert output.count("\n") == 11

    def test_syntax_error_reports_nonzero(self, data_file):
        code, _ = run(["query", data_file, "SELECT WHERE { broken"])
        assert code == 2

    def test_missing_query_text(self, data_file):
        with pytest.raises(SystemExit):
            run(["query", data_file])


class TestQueryFormats:
    QUERY = "SELECT ?x ?n WHERE { ?x <http://x/name> ?n }"

    def test_format_json(self, data_file):
        import json

        code, output = run(["query", data_file, self.QUERY, "--format", "json"])
        assert code == 0
        document = json.loads(output)
        assert document["head"]["vars"] == ["x", "n"]
        assert len(document["results"]["bindings"]) == 10
        binding = document["results"]["bindings"][0]
        assert binding["x"]["type"] == "uri"
        assert binding["n"]["type"] == "literal"

    def test_format_csv(self, data_file):
        code, output = run(["query", data_file, self.QUERY, "--format", "csv"])
        assert code == 0
        lines = output.split("\r\n")
        assert lines[0] == "x,n"
        assert len([line for line in lines if line]) == 11  # header + 10

    def test_format_tsv_renders_ntriples_terms(self, data_file):
        code, output = run(["query", data_file, self.QUERY, "--format", "tsv"])
        assert code == 0
        lines = output.rstrip("\n").split("\n")
        assert lines[0] == "?x\t?n"
        iri_cell, literal_cell = lines[1].split("\t")
        assert iri_cell.startswith("<http://x/") and iri_cell.endswith(">")
        assert literal_cell.startswith('"') and literal_cell.endswith('"')

    def test_format_with_limit(self, data_file):
        import json

        code, output = run(
            ["query", data_file, self.QUERY, "--format", "json", "--limit", "3"]
        )
        assert code == 0
        assert len(json.loads(output)["results"]["bindings"]) == 3

    def test_stats_do_not_corrupt_formatted_output(self, data_file, capsys):
        import json

        code, output = run(["query", data_file, self.QUERY, "--format", "json", "--stats"])
        assert code == 0
        json.loads(output)  # payload stays machine-readable …
        assert "join space" in capsys.readouterr().err  # … stats went to stderr

    def test_format_matches_library_serializers(self, data_file):
        from repro.core import SparqlUOEngine
        from repro.rdf import load_ntriples
        from repro.sparql.results import to_csv, to_json, to_tsv

        engine = SparqlUOEngine.for_dataset(load_ntriples(data_file))
        result = engine.execute(self.QUERY)
        expected = {
            "json": to_json(result.variables, result.solutions) + "\n",
            "csv": to_csv(result.variables, result.solutions),
            "tsv": to_tsv(result.variables, result.solutions),
        }
        for fmt, text in expected.items():
            code, output = run(["query", data_file, self.QUERY, "--format", fmt])
            assert code == 0
            assert output == text


class TestGenerate:
    def test_generate_lubm(self, tmp_path):
        out_path = tmp_path / "lubm.nt"
        code, output = run(
            ["generate", "lubm", str(out_path), "--universities", "1"]
        )
        assert code == 0
        assert "wrote" in output
        assert out_path.stat().st_size > 100_000

    def test_generate_dbpedia(self, tmp_path):
        out_path = tmp_path / "dbp.nt"
        code, output = run(["generate", "dbpedia", str(out_path), "--articles", "300"])
        assert code == 0
        assert out_path.exists()

    def test_generated_file_queryable(self, tmp_path):
        out_path = tmp_path / "small.nt"
        run(["generate", "dbpedia", str(out_path), "--articles", "200"])
        code, output = run(
            [
                "query", str(out_path),
                "SELECT ?x WHERE { ?x <http://dbpedia.org/ontology/wikiPageWikiLink> "
                "<http://dbpedia.org/resource/Economic_system> }",
            ]
        )
        assert code == 0
        assert output.count("\n") > 1


class TestSnapshot:
    def test_build_and_info(self, data_file, tmp_path):
        snap = str(tmp_path / "data.snap")
        code, output = run(["snapshot", "build", data_file, snap])
        assert code == 0
        assert "wrote snapshot of 20 triples" in output
        code, output = run(["snapshot", "info", snap, "--verify"])
        assert code == 0
        assert "triples       20" in output
        assert "checksums     OK" in output
        assert "section META" in output

    def test_query_runs_on_snapshot(self, data_file, tmp_path):
        snap = str(tmp_path / "data.snap")
        run(["snapshot", "build", data_file, snap])
        query = "SELECT ?x WHERE { ?x <http://x/p> <http://x/o0> }"
        code_nt, out_nt = run(["query", data_file, query])
        code_snap, out_snap = run(["query", snap, query])
        assert code_nt == code_snap == 0
        assert sorted(out_nt.splitlines()) == sorted(out_snap.splitlines())

    def test_info_rejects_non_snapshot(self, data_file):
        code, _ = run(["snapshot", "info", data_file])
        assert code == 2

    def test_generate_with_snapshot(self, tmp_path):
        nt = str(tmp_path / "lubm.nt")
        snap = str(tmp_path / "lubm.snap")
        code, output = run(
            ["generate", "lubm", nt, "--universities", "1", "--snapshot", snap]
        )
        assert code == 0
        assert "wrote snapshot" in output
        code, output = run(["snapshot", "info", snap])
        assert code == 0
        assert "generation" in output


class TestStats:
    def test_stats_output(self, data_file):
        code, output = run(["stats", data_file])
        assert code == 0
        assert "triples" in output and "20" in output
