"""Concurrency regression tests for the store's index state transitions.

A snapshot-backed store serves reads from :class:`FrozenTripleIndexes`;
the first write layers a :class:`DeltaOverlayIndexes` over it (the
frozen permutations are never torn down — no thaw).  Both transitions
— the deferred lazy build and the overlay installation — must be
atomic from a reader's point of view: build the replacement fully,
then publish it with a single attribute store.  Before the fix, two
racing first-touch readers could trip the loader's one-shot assertion,
and a reader could in principle observe a half-initialized structure.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import SparqlUOEngine
from repro.rdf import Dataset, IRI, Triple
from repro.storage import DeltaOverlayIndexes, TripleStore
from repro.storage.indexes import FrozenTripleIndexes

EX = "http://example.org/"


def _dataset(rows: int = 60) -> Dataset:
    dataset = Dataset()
    for index in range(rows):
        dataset.add_spo(
            IRI(f"{EX}s{index}"), IRI(f"{EX}p{index % 3}"), IRI(f"{EX}o{index % 7}")
        )
    return dataset


@pytest.fixture
def snapshot(tmp_path):
    path = tmp_path / "data.snap"
    TripleStore.from_dataset(_dataset()).save(str(path))
    return str(path)


class TestLazyBuildRace:
    def test_concurrent_first_touch_builds_once(self, snapshot):
        """N threads racing the deferred index build all see one result.

        The loader is consumed exactly once; before the lock, a second
        racer could hit ``assert self._indexes_loader is not None``.
        """
        for _ in range(20):
            store = TripleStore.load(snapshot, lazy=True)
            barrier = threading.Barrier(8)
            seen, errors = [], []

            def touch():
                try:
                    barrier.wait(5)
                    seen.append(store.indexes)
                except Exception as exc:  # noqa: BLE001 — the assertion below reports
                    errors.append(exc)

            threads = [threading.Thread(target=touch) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
            assert not errors
            assert len(seen) == 8
            assert all(index is seen[0] for index in seen), "double build published"
            assert len(seen[0]) == 60
            store.close()


class TestThawDuringReads:
    def test_readers_survive_concurrent_thaw(self, snapshot):
        """One engine reads in a loop while another thread writes (thaws).

        Readers must never crash and must always observe a complete
        index: every query returns either the pre-write or post-write
        result, nothing in between and nothing torn.
        """
        store = TripleStore.load(snapshot, lazy=True)
        assert isinstance(store.indexes, FrozenTripleIndexes)
        engine = SparqlUOEngine(store, bgp_engine="wco", mode="base")
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }}"
        baseline = len(engine.execute(query))

        stop = threading.Event()
        observed, errors = set(), []

        def read_loop():
            try:
                while not stop.is_set():
                    observed.add(len(engine.execute(query)))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        readers = [threading.Thread(target=read_loop) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            # Install the delta overlay mid-read-traffic, then a few
            # more writes into it.
            for index in range(5):
                store.add(
                    Triple(IRI(f"{EX}new{index}"), IRI(f"{EX}p0"), IRI(f"{EX}onew"))
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join(10)
        assert not errors
        # Counts only ever move between the pre-write baseline and the
        # final post-write value.
        assert observed <= set(range(baseline, baseline + 6))
        final = len(engine.execute(query))
        assert final == baseline + 5
        # Writes no longer thaw: the store still serves the frozen
        # sorted-run read paths, through the delta overlay.
        assert isinstance(store.indexes, DeltaOverlayIndexes)
        assert isinstance(store.indexes, FrozenTripleIndexes)

    def test_overlay_preserves_contents(self, snapshot):
        store = TripleStore.load(snapshot, lazy=True)
        frozen_triples = sorted(store.indexes.all_triples())
        store.add(Triple(IRI(f"{EX}extra"), IRI(f"{EX}p0"), IRI(f"{EX}oextra")))
        overlay_triples = sorted(store.indexes.all_triples())
        assert len(overlay_triples) == len(frozen_triples) + 1
        assert set(frozen_triples) <= set(overlay_triples)
