"""Unit tests for the RDF term model."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    RDF_LANG_STRING,
    Variable,
    XSD_STRING,
)


class TestIRI:
    def test_value_stored(self):
        assert IRI("http://a/b").value == "http://a/b"

    def test_equality(self):
        assert IRI("http://a") == IRI("http://a")
        assert IRI("http://a") != IRI("http://b")

    def test_hashable(self):
        assert len({IRI("http://a"), IRI("http://a"), IRI("http://b")}) == 2

    def test_n3(self):
        assert IRI("http://a/b#c").n3() == "<http://a/b#c>"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            IRI(42)

    def test_immutable(self):
        iri = IRI("http://a")
        with pytest.raises(AttributeError):
            iri.value = "http://b"

    def test_is_ground(self):
        assert IRI("http://a").is_ground()

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("http://a") != Literal("http://a")


class TestBlankNode:
    def test_label(self):
        assert BlankNode("b1").label == "b1"

    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_equality(self):
        assert BlankNode("b") == BlankNode("b")
        assert BlankNode("b") != BlankNode("c")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BlankNode("")

    def test_immutable(self):
        node = BlankNode("b")
        with pytest.raises(AttributeError):
            node.label = "c"


class TestLiteral:
    def test_plain_gets_xsd_string(self):
        lit = Literal("hello")
        assert lit.datatype == XSD_STRING
        assert lit.language is None

    def test_language_tag_forces_langstring(self):
        lit = Literal("hello", language="EN")
        assert lit.datatype == RDF_LANG_STRING
        assert lit.language == "en"  # normalized to lower case

    def test_custom_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.datatype.endswith("integer")

    def test_language_with_conflicting_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype="http://other")

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_n3_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.n3() == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_n3_escapes(self):
        assert Literal('a"b\nc\\d').n3() == '"a\\"b\\nc\\\\d"'

    def test_equality_considers_language(self):
        assert Literal("x", language="en") != Literal("x", language="fr")
        assert Literal("x", language="en") != Literal("x")

    def test_equality_considers_datatype(self):
        integer = "http://www.w3.org/2001/XMLSchema#integer"
        assert Literal("5", datatype=integer) != Literal("5")

    def test_rejects_non_string_lexical(self):
        with pytest.raises(ValueError):
            Literal(5)

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"


class TestVariable:
    def test_name(self):
        assert Variable("x").name == "x"

    def test_sigils_stripped(self):
        assert Variable("?x") == Variable("x") == Variable("$x")

    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_not_ground(self):
        assert not Variable("x").is_ground()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Variable("")
        with pytest.raises(ValueError):
            Variable("?")


class TestOrdering:
    def test_kinds_are_grouped(self):
        # IRIs < blanks < literals < variables by construction.
        assert IRI("z") < BlankNode("a") < Literal("a") < Variable("a")

    def test_same_kind_orders_by_payload(self):
        assert IRI("http://a") < IRI("http://b")
        assert Literal("a") < Literal("b")

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_ordering_is_total_on_iris(self, a, b):
        left, right = IRI(a), IRI(b)
        assert (left < right) or (right < left) or (left == right)

    def test_comparison_with_non_term_not_supported(self):
        with pytest.raises(TypeError):
            IRI("http://a") < 5
