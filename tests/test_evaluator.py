"""Unit tests for the BGP-based evaluator (Algorithm 1 + pruning)."""

import pytest

from repro.bgp import HashJoinEngine, WCOJoinEngine
from repro.core import BETree, CandidatePolicy, ThresholdMode
from repro.core.evaluator import BGPBasedEvaluator, EvaluationTrace
from repro.sparql import SelectQuery, execute_query, parse_group
from repro.storage import TripleStore

QUERIES = [
    "{ ?x <http://example.org/worksFor> ?d }",
    "{ ?x <http://example.org/worksFor> ?d . ?x <http://example.org/headOf> ?d }",
    "{ { ?x <http://example.org/headOf> ?d } UNION { ?x <http://example.org/worksFor> ?d } }",
    "{ ?x <http://example.org/worksFor> ?d OPTIONAL { ?s <http://example.org/advisor> ?x } }",
    "{ OPTIONAL { ?x <http://example.org/worksFor> ?d } }",
    "{ ?x <http://example.org/headOf> ?d { ?s <http://example.org/advisor> ?x } }",
    "{ ?x <http://example.org/worksFor> ?d OPTIONAL { ?s <http://example.org/advisor> ?x "
    "  OPTIONAL { ?s <http://example.org/takesCourse> ?c } } }",
    "{ ?x <http://example.org/headOf> ?d "
    "  { ?x <http://example.org/type> ?t } UNION { ?x <http://example.org/name> ?n } "
    "  OPTIONAL { ?x <http://example.org/teacherOf> ?c } }",
    "{ }",
]


@pytest.fixture(params=["wco", "hashjoin"])
def engine(request, university_store):
    cls = WCOJoinEngine if request.param == "wco" else HashJoinEngine
    return cls(university_store)


def reference(text, dataset):
    return execute_query(SelectQuery(None, parse_group(text)), dataset)


class TestAlgorithm1:
    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_reference(self, engine, university_dataset, text):
        tree = BETree.from_group(parse_group(text))
        evaluator = BGPBasedEvaluator(engine)
        result = engine.decode_bag(evaluator.evaluate(tree))
        names = sorted(result.variables())
        assert result.project(names) == reference(text, university_dataset).project(names)

    @pytest.mark.parametrize("text", QUERIES)
    def test_pruning_preserves_results(self, engine, university_dataset, text):
        tree = BETree.from_group(parse_group(text))
        plain = BGPBasedEvaluator(engine).evaluate(tree)
        pruned = BGPBasedEvaluator(
            engine, CandidatePolicy(ThresholdMode.ADAPTIVE)
        ).evaluate(tree)
        assert plain == pruned

    def test_empty_tree_is_identity(self, engine):
        tree = BETree.from_group(parse_group("{ }"))
        result = BGPBasedEvaluator(engine).evaluate(tree)
        assert len(result) == 1 and list(result) == [{}]


class TestTrace:
    def test_trace_records_bgp_sizes(self, engine):
        tree = BETree.from_group(parse_group("{ ?x <http://example.org/worksFor> ?d }"))
        trace = EvaluationTrace()
        BGPBasedEvaluator(engine).evaluate(tree, trace)
        assert trace.bgp_evaluations == 1
        (size,) = trace.bgp_result_sizes.values()
        assert size == 12  # 3 departments × 4 professors

    def test_trace_counts_pruned_evaluations(self, engine):
        text = (
            "{ ?x <http://example.org/headOf> ?d "
            "OPTIONAL { ?x <http://example.org/teacherOf> ?c } }"
        )
        tree = BETree.from_group(parse_group(text))
        trace = EvaluationTrace()
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        BGPBasedEvaluator(engine, policy).evaluate(tree, trace)
        # headOf yields 3 heads < teacherOf's 12 → the optional BGP is pruned.
        assert trace.pruned_evaluations == 1

    def test_pruning_shrinks_observed_results(self, engine):
        text = (
            "{ ?x <http://example.org/headOf> ?d "
            "OPTIONAL { ?x <http://example.org/teacherOf> ?c } }"
        )
        tree = BETree.from_group(parse_group(text))
        plain_trace = EvaluationTrace()
        BGPBasedEvaluator(engine).evaluate(tree, plain_trace)
        pruned_trace = EvaluationTrace()
        BGPBasedEvaluator(engine, CandidatePolicy(ThresholdMode.ADAPTIVE)).evaluate(
            tree, pruned_trace
        )
        assert sum(pruned_trace.bgp_result_sizes.values()) < sum(
            plain_trace.bgp_result_sizes.values()
        )

    def test_candidates_cross_levels(self, engine):
        """§6: a selective BGP's results prune a nested OPTIONAL's BGP
        two levels down, which tree transformation alone cannot reach."""
        text = (
            "{ ?x <http://example.org/headOf> ?d "
            "OPTIONAL { ?s <http://example.org/advisor> ?x "
            "  OPTIONAL { ?x <http://example.org/teacherOf> ?c } } }"
        )
        tree = BETree.from_group(parse_group(text))
        trace = EvaluationTrace()
        BGPBasedEvaluator(engine, CandidatePolicy(ThresholdMode.ADAPTIVE)).evaluate(
            tree, trace
        )
        assert trace.pruned_evaluations >= 2
