"""Tests for the SPARQL protocol server subsystem.

Unit tests exercise the protocol parser, the generation-keyed cache,
admission control and metrics without a socket; the HTTP tests run a
real :class:`~repro.server.app.SparqlServer` (spawned worker processes,
ephemeral port) and drive it with urllib, including the timeout,
worker-death and shedding paths.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import SparqlUOEngine
from repro.datasets.lubm import generate_lubm
from repro.server import (
    ResultCache,
    ServerConfig,
    SparqlServer,
    negotiate_format,
    parse_sparql_request,
    parse_update_request,
)
from repro.server.app import AdmissionController
from repro.server.cache import CachedResult
from repro.server.metrics import LatencySummary, ServerMetrics
from repro.server.pool import WorkerPool
from repro.server.protocol import ProtocolError
from repro.sparql.results import to_csv, to_json, to_tsv
from repro.storage import TripleStore

UB = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

QUERY_HEADOF = f"SELECT ?x ?y WHERE {{ ?x <{UB}headOf> ?y }}"
QUERY_OPTIONAL = (
    f"SELECT ?x ?dept ?mail WHERE {{ ?x <{UB}worksFor> ?dept "
    f"OPTIONAL {{ ?x <{UB}emailAddress> ?mail }} }}"
)
QUERY_UNION = (
    f"SELECT ?p WHERE {{ {{ ?p <{UB}headOf> ?o }} UNION {{ ?p <{UB}teacherOf> ?o }} }}"
)
#: Triple cartesian product — astronomically large, guaranteed to hit
#: any sub-second deadline long before completing.
QUERY_SLOW = "SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }"


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("server") / "lubm.snap"
    TripleStore.from_dataset(generate_lubm(universities=1, seed=42)).save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def server(snapshot_path):
    config = ServerConfig(
        data=snapshot_path, port=0, workers=2, timeout=10.0, cache_entries=32
    )
    instance = SparqlServer(config)
    instance.start()
    yield instance
    instance.shutdown()


@pytest.fixture(scope="module")
def local_engine(snapshot_path):
    return SparqlUOEngine(TripleStore.load(snapshot_path), bgp_engine="wco", mode="full")


def http_get(url: str, accept=None, timeout=60):
    request = urllib.request.Request(url, headers={"Accept": accept} if accept else {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def sparql_get(server, query, accept=None, extra_params=None, timeout=60):
    params = {"query": query}
    params.update(extra_params or {})
    url = server.url + "/sparql?" + urllib.parse.urlencode(params)
    return http_get(url, accept=accept, timeout=timeout)


# ----------------------------------------------------------------------
# protocol unit tests (no socket)
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_default_is_json(self):
        assert negotiate_format(None) == "json"
        assert negotiate_format("") == "json"
        assert negotiate_format("*/*") == "json"

    def test_exact_media_types(self):
        assert negotiate_format("application/sparql-results+json") == "json"
        assert negotiate_format("text/csv") == "csv"
        assert negotiate_format("text/tab-separated-values") == "tsv"
        assert negotiate_format("application/json") == "json"

    def test_q_values_rank(self):
        accept = "text/csv;q=0.3, text/tab-separated-values;q=0.9"
        assert negotiate_format(accept) == "tsv"

    def test_zero_q_is_ignored(self):
        assert negotiate_format("text/csv;q=0, */*") == "json"

    def test_wildcard_subtype(self):
        assert negotiate_format("text/*") == "csv"  # first text/ offering

    def test_explicit_format_wins(self):
        assert negotiate_format("text/csv", explicit="tsv") == "tsv"

    def test_unknown_explicit_format(self):
        with pytest.raises(ProtocolError) as excinfo:
            negotiate_format(None, explicit="xml")
        assert excinfo.value.status == 400

    def test_not_acceptable(self):
        with pytest.raises(ProtocolError) as excinfo:
            negotiate_format("application/xml")
        assert excinfo.value.status == 406


class TestParseRequest:
    def test_get(self):
        qs = urllib.parse.urlencode({"query": "SELECT * WHERE { ?s ?p ?o }"})
        request = parse_sparql_request("GET", qs, {}, b"")
        assert request.query == "SELECT * WHERE { ?s ?p ?o }"
        assert request.format == "json"

    def test_get_missing_query(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sparql_request("GET", "", {}, b"")
        assert excinfo.value.status == 400

    def test_get_repeated_query(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sparql_request("GET", "query=a&query=b", {}, b"")
        assert excinfo.value.status == 400

    def test_post_form(self):
        body = urllib.parse.urlencode({"query": "SELECT * WHERE { ?s ?p ?o }"}).encode()
        request = parse_sparql_request(
            "POST", "", {"Content-Type": "application/x-www-form-urlencoded"}, body
        )
        assert "SELECT" in request.query

    def test_post_direct(self):
        request = parse_sparql_request(
            "POST",
            "format=csv",
            {"Content-Type": "application/sparql-query; charset=utf-8"},
            b"SELECT * WHERE { ?s ?p ?o }",
        )
        assert request.format == "csv"

    def test_post_unsupported_media_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sparql_request("POST", "", {"Content-Type": "text/plain"}, b"x")
        assert excinfo.value.status == 415

    def test_post_form_format_parameter(self):
        body = urllib.parse.urlencode({"query": "SELECT * {?s ?p ?o}", "format": "tsv"})
        request = parse_sparql_request(
            "POST", "", {"Content-Type": "application/x-www-form-urlencoded"}, body.encode()
        )
        assert request.format == "tsv"

    def test_empty_query_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sparql_request("GET", "query=%20", {}, b"")
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# cache unit tests
# ----------------------------------------------------------------------
def _entry(payload: bytes = b"x") -> CachedResult:
    return CachedResult(payload, "application/json", 1, 0.0)


class TestResultCache:
    def test_round_trip(self):
        cache = ResultCache(max_entries=4)
        cache.put(7, "json", "SELECT 1", _entry(b"payload"))
        hit = cache.get(7, "json", "SELECT 1")
        assert hit is not None and hit.payload == b"payload"

    def test_generation_keys_invalidate(self):
        cache = ResultCache(max_entries=4)
        cache.put(1, "json", "q", _entry())
        assert cache.get(2, "json", "q") is None  # newer data, different key
        assert cache.get(1, "json", "q") is not None

    def test_format_is_part_of_key(self):
        cache = ResultCache(max_entries=4)
        cache.put(1, "json", "q", _entry())
        assert cache.get(1, "csv", "q") is None

    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put(1, "json", "a", _entry())
        cache.put(1, "json", "b", _entry())
        cache.get(1, "json", "a")  # refresh a
        cache.put(1, "json", "c", _entry())
        assert cache.get(1, "json", "b") is None  # LRU victim
        assert cache.get(1, "json", "a") is not None
        assert cache.evictions == 1

    def test_eviction_by_bytes(self):
        cache = ResultCache(max_entries=10, max_bytes=100)
        cache.put(1, "json", "a", _entry(b"x" * 60))
        cache.put(1, "json", "b", _entry(b"y" * 60))
        assert cache.get(1, "json", "a") is None
        assert cache.payload_bytes <= 100

    def test_oversized_entry_refused(self):
        cache = ResultCache(max_entries=10, max_bytes=10)
        assert not cache.put(1, "json", "a", _entry(b"z" * 11))
        assert len(cache) == 0

    def test_disabled_cache(self):
        cache = ResultCache(max_entries=0)
        assert not cache.put(1, "json", "a", _entry())
        assert cache.get(1, "json", "a") is None


# ----------------------------------------------------------------------
# admission + metrics unit tests
# ----------------------------------------------------------------------
class TestAdmission:
    def test_in_flight_limit_and_release(self):
        admission = AdmissionController(2, 0, queue_wait=0.05)
        assert admission.acquire() and admission.acquire()
        assert not admission.acquire()  # full, no queue
        admission.release()
        assert admission.acquire()

    def test_queue_admits_after_release(self):
        admission = AdmissionController(1, 1, queue_wait=5.0)
        assert admission.acquire()
        results = []
        waiter = threading.Thread(target=lambda: results.append(admission.acquire()))
        waiter.start()
        time.sleep(0.05)
        admission.release()
        waiter.join(2.0)
        assert results == [True]

    def test_queue_overflow_sheds_instantly(self):
        admission = AdmissionController(1, 0, queue_wait=30.0)
        assert admission.acquire()
        started = time.perf_counter()
        assert not admission.acquire()
        assert time.perf_counter() - started < 1.0  # no 30 s park


class TestMetrics:
    def test_latency_quantiles(self):
        summary = LatencySummary()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            summary.observe(value)
        assert summary.quantile(0.5) == 3.0
        assert summary.count == 5 and summary.total == 15.0
        assert LatencySummary().quantile(0.5) is None

    def test_render_contains_core_series(self):
        metrics = ServerMetrics()
        metrics.record_response(200)
        metrics.record_query("miss", 0.01, 5, 2.5)
        text = metrics.render(
            3,
            {"alive": 2, "target": 2, "backoff_seconds": 0.0, "snapshot_fallbacks": 0},
            {"hits": 1, "misses": 2, "entries": 1, "bytes": 10},
        )
        assert 'repro_requests_total{status="200"} 1' in text
        assert "repro_store_generation 3" in text
        assert 'repro_query_latency_seconds_count{cache="miss"} 1' in text
        assert "repro_cache_hits_total 1" in text


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------
class TestHttpEndpoint:
    def test_get_json(self, server, local_engine):
        status, headers, body = sparql_get(server, QUERY_HEADOF)
        assert status == 200
        assert headers["Content-Type"] == "application/sparql-results+json"
        document = json.loads(body)
        assert document["head"]["vars"] == ["x", "y"]
        assert len(document["results"]["bindings"]) == len(
            local_engine.execute(QUERY_HEADOF)
        )

    def test_payloads_byte_identical_to_local(self, server, local_engine):
        for query in (QUERY_HEADOF, QUERY_OPTIONAL, QUERY_UNION):
            result = local_engine.execute(query)
            expectations = {
                None: to_json(result.variables, result.solutions).encode(),
                "text/csv": to_csv(result.variables, result.solutions).encode(),
                "text/tab-separated-values": to_tsv(
                    result.variables, result.solutions
                ).encode(),
            }
            for accept, expected in expectations.items():
                _, _, body = sparql_get(server, query, accept=accept)
                assert body == expected

    def test_post_form_urlencoded(self, server):
        data = urllib.parse.urlencode({"query": QUERY_HEADOF}).encode()
        request = urllib.request.Request(
            server.url + "/sparql",
            data=data,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
            assert json.loads(response.read())["head"]["vars"] == ["x", "y"]

    def test_post_direct_query(self, server):
        request = urllib.request.Request(
            server.url + "/sparql?format=tsv",
            data=QUERY_HEADOF.encode(),
            headers={"Content-Type": "application/sparql-query"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/tab-separated-values"
            )
            assert response.read().decode().splitlines()[0] == "?x\t?y"

    def test_syntax_error_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            sparql_get(server, "SELECT WHERE {")
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_missing_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(server.url + "/sparql")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_not_acceptable_is_406(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            sparql_get(server, QUERY_HEADOF, accept="application/xml")
        assert excinfo.value.code == 406

    def test_healthz(self, server):
        status, _, body = http_get(server.url + "/healthz")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["workers"] == 2
        assert document["generation"] == server.generation

    def test_metrics_exposition(self, server):
        sparql_get(server, QUERY_HEADOF)
        status, headers, body = http_get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert 'repro_requests_total{status="200"}' in text
        assert "repro_store_generation" in text
        assert "repro_workers 2" in text

    def test_cache_hit_returns_identical_bytes(self, server):
        query = QUERY_UNION + "  # cache-probe"
        _, _, first = sparql_get(server, query)
        before = server.cache.stats()["hits"]
        _, _, second = sparql_get(server, query)
        assert second == first
        assert server.cache.stats()["hits"] == before + 1

    def test_concurrent_mixed_queries_byte_identical(self, server, local_engine):
        queries = [QUERY_HEADOF, QUERY_OPTIONAL, QUERY_UNION] * 3
        expected = {}
        for query in set(queries):
            result = local_engine.execute(query)
            expected[query] = to_json(result.variables, result.solutions).encode()
        failures = []

        def issue(query: str) -> None:
            try:
                _, _, body = sparql_get(server, query)
                if body != expected[query]:
                    failures.append(f"mismatch for {query!r}")
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                failures.append(repr(exc))

        threads = [threading.Thread(target=issue, args=(q,)) for q in queries]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not failures


class TestTimeoutAndShedding:
    @pytest.fixture(scope="class")
    def strict_server(self, snapshot_path):
        config = ServerConfig(
            data=snapshot_path,
            port=0,
            workers=1,
            timeout=0.75,
            queue_wait=0.2,
            cache_entries=0,
        )
        instance = SparqlServer(config)
        instance.start()
        yield instance
        instance.shutdown()

    def test_slow_query_times_out_and_server_recovers(self, strict_server):
        started = time.perf_counter()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            sparql_get(strict_server, QUERY_SLOW, timeout=30)
        assert excinfo.value.code == 504
        assert time.perf_counter() - started < 10
        # The worker survived (cooperative cancel) or was respawned —
        # either way the endpoint keeps answering.
        status, _, _ = sparql_get(strict_server, QUERY_HEADOF, timeout=60)
        assert status == 200
        assert strict_server.metrics.timeouts_total >= 1

    def test_overload_sheds_with_503(self, strict_server):
        statuses = []
        lock = threading.Lock()

        def issue() -> None:
            try:
                status, _, _ = sparql_get(strict_server, QUERY_SLOW, timeout=30)
            except urllib.error.HTTPError as exc:
                status = exc.code
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=issue) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        # 1 in flight + 2 queued; of 6 slow requests at least one must
        # be refused outright.
        assert 503 in statuses
        assert all(status in (503, 504) for status in statuses)
        # And the endpoint is alive afterwards.
        status, _, _ = sparql_get(strict_server, QUERY_HEADOF, timeout=60)
        assert status == 200


class TestIngestionGuards:
    def test_oversized_post_body_is_413(self, snapshot_path):
        config = ServerConfig(
            data=snapshot_path, port=0, workers=1, max_body_bytes=64
        )
        with SparqlServer(config) as instance:
            request = urllib.request.Request(
                instance.url + "/sparql",
                data=b"query=" + b"#" * 200,
                headers={"Content-Type": "application/x-www-form-urlencoded"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 413
            # Small bodies still work on the same server.
            status, _, _ = sparql_get(instance, QUERY_HEADOF)
            assert status == 200

    def test_bind_failure_raises_cleanly(self, server):
        # The listener binds before any worker spawns, so a taken port
        # surfaces as OSError from the constructor (and `repro serve`
        # turns it into `error: …` + exit 2) with no leaked processes.
        with pytest.raises(OSError):
            SparqlServer(server.config.with_port(server.port))


class TestGenerationDrift:
    def test_drift_clears_and_bypasses_cache(self, snapshot_path):
        """After a respawned worker reports a different generation the
        cache is cleared and bypassed — stale hits become impossible,
        at the price of caching (correct-by-construction degradation)."""
        config = ServerConfig(data=snapshot_path, port=0, workers=1)
        with SparqlServer(config) as instance:
            sparql_get(instance, QUERY_HEADOF)
            assert len(instance.cache) == 1
            instance._on_generation_drift(instance.generation + 7)
            assert instance.generation_mixed
            assert len(instance.cache) == 0
            status, _, _ = sparql_get(instance, QUERY_HEADOF)  # still serves
            assert status == 200
            assert len(instance.cache) == 0  # and never re-populates
            _, _, body = http_get(instance.url + "/healthz")
            assert json.loads(body)["generation_mixed"] is True


class TestWorkerRecovery:
    def test_killed_worker_is_respawned(self, snapshot_path):
        config = ServerConfig(data=snapshot_path, port=0, workers=1, timeout=5.0)
        restarts = []
        pool = WorkerPool(config, on_restart=lambda: restarts.append(1))
        try:
            first = pool.execute(QUERY_HEADOF, "json")
            assert first.kind == "ok"
            # Simulate a crashed worker under the pool's feet.
            victim = pool._workers[0]
            victim.proc.kill()
            victim.proc.join(10)
            reply = pool.execute(QUERY_HEADOF, "json")
            # The dead worker is detected and replaced as part of the
            # failing call; the next call runs on the fresh worker.
            assert reply.kind in ("ok", "error")
            healed = pool.execute(QUERY_HEADOF, "json")
            assert healed.kind == "ok"
            assert restarts, "restart callback never fired"
            assert pool.alive == 1
        finally:
            pool.close()


# ----------------------------------------------------------------------
# stale lookup (regression: LRU order is not data freshness)
# ----------------------------------------------------------------------
class TestStaleLookup:
    def test_get_stale_prefers_highest_generation(self):
        """get_stale must return the freshest *generation*, not the most
        recently *used* entry.  Before the fix the LRU-order scan let a
        client re-touching an old-generation entry shadow a newer one."""
        cache = ResultCache(max_entries=8)
        cache.put(1, "json", "q", _entry(b"gen1"))
        cache.put(3, "json", "q", _entry(b"gen3"))
        cache.put(2, "json", "q", _entry(b"gen2"))
        # Make the oldest generation the most recently used.
        assert cache.get(1, "json", "q").payload == b"gen1"
        stale = cache.get_stale("json", "q")
        assert stale is not None
        assert stale.payload == b"gen3"

    def test_get_stale_matches_format_and_query(self):
        cache = ResultCache(max_entries=8)
        cache.put(5, "json", "q", _entry(b"json-q"))
        cache.put(9, "csv", "q", _entry(b"csv-q"))
        cache.put(9, "json", "other", _entry(b"json-other"))
        assert cache.get_stale("json", "q").payload == b"json-q"
        assert cache.get_stale("tsv", "q") is None


# ----------------------------------------------------------------------
# update protocol unit tests (no socket)
# ----------------------------------------------------------------------
class TestParseUpdateRequest:
    def test_post_form(self):
        body = urllib.parse.urlencode({"update": "INSERT DATA { <u:a> <u:b> <u:c> }"})
        text = parse_update_request(
            "POST", {"Content-Type": "application/x-www-form-urlencoded"}, body.encode()
        )
        assert "INSERT DATA" in text

    def test_post_direct(self):
        text = parse_update_request(
            "POST",
            {"Content-Type": "application/sparql-update; charset=utf-8"},
            b"DELETE DATA { <u:a> <u:b> <u:c> }",
        )
        assert text.startswith("DELETE DATA")

    def test_get_is_405(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_update_request("GET", {}, b"")
        assert excinfo.value.status == 405

    def test_missing_form_parameter_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_update_request(
                "POST", {"Content-Type": "application/x-www-form-urlencoded"}, b"query=x"
            )
        assert excinfo.value.status == 400

    def test_wrong_content_type_is_415(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_update_request("POST", {"Content-Type": "text/plain"}, b"x")
        assert excinfo.value.status == 415

    def test_empty_update_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_update_request(
                "POST", {"Content-Type": "application/sparql-update"}, b"  "
            )
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# live writes over HTTP
# ----------------------------------------------------------------------
def http_post(url, body, content_type, timeout=60):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def post_update(server, text, timeout=60):
    status, _, body = http_post(
        server.url + "/update", text.encode("utf-8"), "application/sparql-update", timeout
    )
    return status, json.loads(body)


EX = "http://example.org/live#"
LIVE_QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}linked> ?o }}"


def _live_rows(server):
    status, _, body = sparql_get(server, LIVE_QUERY)
    assert status == 200
    return json.loads(body)["results"]["bindings"]


class TestLiveUpdates:
    @pytest.fixture
    def rw_server(self, snapshot_path, tmp_path):
        import shutil

        data = str(tmp_path / "live.snap")
        shutil.copy(snapshot_path, data)
        config = ServerConfig(
            data=data, port=0, workers=2, timeout=15.0, cache_entries=32
        )
        with SparqlServer(config) as instance:
            yield instance

    def test_insert_delete_and_generation(self, rw_server):
        generation0 = rw_server.generation
        assert _live_rows(rw_server) == []

        status, outcome = post_update(
            rw_server,
            f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> . "
            f"<{EX}b> <{EX}linked> <{EX}c> }}",
        )
        assert status == 200
        assert outcome["added"] == 2 and outcome["removed"] == 0
        assert outcome["changed"] is True
        assert outcome["workers_confirmed"] == 2
        assert outcome["generation"] > generation0
        # Committed writes are visible to reads with no restart, no
        # snapshot rebuild, and still through the frozen read paths.
        assert len(_live_rows(rw_server)) == 2

        # The generation-keyed cache invalidated structurally: the new
        # rows appear even though the old result was cached.
        status, outcome = post_update(
            rw_server, f"DELETE DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}"
        )
        assert status == 200
        assert outcome["removed"] == 1
        rows = _live_rows(rw_server)
        assert len(rows) == 1
        assert rows[0]["s"]["value"] == f"{EX}b"

        _, _, body = http_get(rw_server.url + "/healthz")
        health = json.loads(body)
        assert health["generation"] == rw_server.generation
        assert health["pending_updates"] == 2
        assert health["generation_mixed"] is False

    def test_noop_update_commits_nothing(self, rw_server):
        post_update(rw_server, f"INSERT DATA {{ <{EX}x> <{EX}linked> <{EX}y> }}")
        generation = rw_server.generation
        # Re-inserting the same triple changes nothing: no generation
        # bump, no broadcast, no cache invalidation (the write-path
        # invalidation fix).
        status, outcome = post_update(
            rw_server, f"INSERT DATA {{ <{EX}x> <{EX}linked> <{EX}y> }}"
        )
        assert status == 200
        assert outcome["added"] == 0 and outcome["removed"] == 0
        assert outcome["changed"] is False
        assert outcome["workers_confirmed"] == 0
        assert rw_server.generation == generation

    def test_where_driven_modify(self, rw_server):
        post_update(
            rw_server,
            f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> . "
            f"<{EX}c> <{EX}linked> <{EX}d> }}",
        )
        status, outcome = post_update(
            rw_server,
            f"DELETE {{ ?s <{EX}linked> ?o }} INSERT {{ ?o <{EX}linked> ?s }} "
            f"WHERE {{ ?s <{EX}linked> ?o }}",
        )
        assert status == 200
        assert outcome["added"] == 2 and outcome["removed"] == 2
        subjects = sorted(row["s"]["value"] for row in _live_rows(rw_server))
        assert subjects == [f"{EX}b", f"{EX}d"]

    def test_update_errors(self, rw_server):
        request = urllib.request.Request(
            rw_server.url + "/update",
            data=b"INSERT DATA { this is not sparql",
            headers={"Content-Type": "application/sparql-update"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        request = urllib.request.Request(
            rw_server.url + "/update",
            data=b"LOAD <http://example.org/file.nt>",
            headers={"Content-Type": "application/sparql-update"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_compaction_folds_delta_and_truncates_replay(self, snapshot_path, tmp_path):
        import shutil

        data = str(tmp_path / "compact.snap")
        shutil.copy(snapshot_path, data)
        config = ServerConfig(
            data=data, port=0, workers=1, timeout=15.0, compact_threshold=1
        )
        with SparqlServer(config) as instance:
            status, outcome = post_update(
                instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}"
            )
            assert status == 200 and outcome["changed"] is True
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if (
                    instance.metrics.compactions_total
                    and instance.pool.pending_replay == 0
                ):
                    break
                time.sleep(0.05)
            assert instance.metrics.compactions_total == 1
            assert instance.pool.pending_replay == 0
            # The data file now persists the post-update generation and
            # the folded triple; a cold store sees both.
            compacted = TripleStore.load(data)
            try:
                assert compacted.generation == instance.generation
                from repro.rdf import IRI, TriplePattern

                pattern = TriplePattern(
                    IRI(f"{EX}a"), IRI(f"{EX}linked"), IRI(f"{EX}b")
                )
                assert len(list(compacted.match(pattern))) == 1
            finally:
                compacted.close()
            # Queries still answer after compaction.
            assert len(_live_rows(instance)) == 1

    def test_respawned_worker_replays_updates(self, rw_server):
        post_update(rw_server, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}")
        # Kill one worker; the pool heals it and must replay the update
        # before the replacement serves.
        victim = rw_server.pool._workers[0]
        victim.proc.kill()
        victim.proc.join(10)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if rw_server.pool.alive == 2 and all(
                w.generation == rw_server.generation
                for w in rw_server.pool._workers
                if w.generation is not None
            ):
                break
            # Touch the pool so the dead worker is detected promptly; a
            # query landing on the corpse yields a transient 500.
            try:
                sparql_get(rw_server, LIVE_QUERY)
            except urllib.error.HTTPError:
                pass
            time.sleep(0.1)
        assert rw_server.pool.alive == 2
        # Every query — whichever worker serves it — sees the write.
        for _ in range(4):
            assert len(_live_rows(rw_server)) == 1
        assert rw_server.generation_mixed is False


# ----------------------------------------------------------------------
# durability: WAL-backed acked-means-durable updates
# ----------------------------------------------------------------------
class TestDurability:
    def _config(self, data, wal, **overrides):
        defaults = dict(
            data=data, port=0, workers=2, timeout=15.0, wal=wal,
            wal_fsync="interval",
        )
        defaults.update(overrides)
        return ServerConfig(**defaults)

    @pytest.fixture
    def live_paths(self, snapshot_path, tmp_path):
        import shutil

        data = str(tmp_path / "durable.snap")
        shutil.copy(snapshot_path, data)
        return data, str(tmp_path / "durable.wal")

    def _crash(self, instance):
        """Tear the server down the way kill -9 would look from the
        next process: no drain, no WAL close, no pool farewell."""
        instance._httpd.shutdown()
        instance._httpd.server_close()
        instance.pool.close()

    def test_acked_updates_survive_crash_and_restart(self, live_paths):
        data, wal = live_paths
        instance = SparqlServer(self._config(data, wal))
        instance.start()
        try:
            for name in ("b", "c"):
                status, outcome = post_update(
                    instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}{name}> }}"
                )
                assert status == 200 and outcome["changed"] is True
            generation = instance.generation
        finally:
            self._crash(instance)

        with SparqlServer(self._config(data, wal)) as recovered:
            # The snapshot on disk never saw the updates (no compaction
            # ran); the WAL replay alone restores the acked state.
            assert recovered.generation == generation
            assert recovered.wal_recoveries == 1
            assert recovered.recovered_torn_tail is False
            objects = sorted(row["o"]["value"] for row in _live_rows(recovered))
            assert objects == [f"{EX}b", f"{EX}c"]
            # The recovery is traced for the obs layer.
            assert recovered.recovery_trace is not None
            assert recovered.recovery_trace["name"] == "wal_recovery"

    def test_healthz_and_metrics_surface_wal_state(self, live_paths):
        data, wal = live_paths
        with SparqlServer(self._config(data, wal)) as instance:
            post_update(instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}")
            _, _, body = http_get(instance.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["wal_depth"] == 1
            assert health["recovered_torn_tail"] is False
            _, _, body = http_get(instance.url + "/metrics")
            text = body.decode()
            assert "repro_wal_enabled 1" in text
            assert "repro_wal_depth 1" in text
            assert "repro_wal_records_total 1" in text
            assert "repro_wal_recoveries_total 0" in text
            assert "repro_wal_fsync_seconds_count" in text

    def test_wal_disabled_metrics_render_zeros(self, server):
        _, _, body = http_get(server.url + "/metrics")
        text = body.decode()
        assert "repro_wal_enabled 0" in text
        _, _, body = http_get(server.url + "/healthz")
        health = json.loads(body)
        assert health["wal_depth"] == 0

    def test_torn_tail_recovery_is_degraded_but_serving(self, live_paths):
        data, wal = live_paths
        instance = SparqlServer(self._config(data, wal))
        instance.start()
        try:
            for name in ("b", "c"):
                post_update(
                    instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}{name}> }}"
                )
        finally:
            self._crash(instance)
        # The crash tore the final frame mid-append.
        blob = open(wal, "rb").read()
        open(wal, "wb").write(blob[:-4])

        with SparqlServer(self._config(data, wal)) as recovered:
            assert recovered.recovered_torn_tail is True
            # The complete first frame replayed; the torn second is cut.
            objects = [row["o"]["value"] for row in _live_rows(recovered)]
            assert objects == [f"{EX}b"]
            _, _, body = http_get(recovered.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["recovered_torn_tail"] is True
            _, _, body = http_get(recovered.url + "/metrics")
            assert "repro_wal_recoveries_total 1" in body.decode()

    def test_corrupt_wal_refuses_startup(self, live_paths):
        from repro.storage.wal import WalCorruptError

        data, wal = live_paths
        instance = SparqlServer(self._config(data, wal))
        instance.start()
        try:
            post_update(instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}")
        finally:
            self._crash(instance)
        blob = bytearray(open(wal, "rb").read())
        blob[-6] ^= 0xFF  # inside the frame payload: CRC now wrong
        open(wal, "wb").write(bytes(blob))
        with pytest.raises(WalCorruptError):
            SparqlServer(self._config(data, wal))

    def test_respawned_worker_streams_replay_from_wal(self, live_paths):
        data, wal = live_paths
        with SparqlServer(self._config(data, wal)) as instance:
            post_update(instance, f"INSERT DATA {{ <{EX}a> <{EX}linked> <{EX}b> }}")
            # WAL attached: the in-memory replay list stays empty — the
            # unbounded-growth fix — while pending_replay reads the log.
            assert instance.pool._replay == []
            assert instance.pool.pending_replay == 1
            victim = instance.pool._workers[0]
            victim.proc.kill()
            victim.proc.join(10)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if instance.pool.alive == 2 and all(
                    w.generation == instance.generation
                    for w in instance.pool._workers
                    if w.generation is not None
                ):
                    break
                try:
                    sparql_get(instance, LIVE_QUERY)
                except urllib.error.HTTPError:
                    pass
                time.sleep(0.1)
            assert instance.pool.alive == 2
            for _ in range(4):
                assert len(_live_rows(instance)) == 1

    def test_replay_list_bounded_without_wal(self, snapshot_path, tmp_path, monkeypatch):
        """WAL off: the in-memory respawn log no longer grows without
        bound between compactions — it is capped, and the floor tracks
        what was dropped so a stale respawn is refused, not wrong."""
        import shutil

        from repro.server import pool as pool_module

        monkeypatch.setattr(pool_module, "_REPLAY_CAP", 3)
        data = str(tmp_path / "cap.snap")
        shutil.copy(snapshot_path, data)
        config = ServerConfig(data=data, port=0, workers=1, timeout=15.0)
        with SparqlServer(config) as instance:
            for i in range(5):
                status, outcome = post_update(
                    instance, f"INSERT DATA {{ <{EX}n{i}> <{EX}linked> <{EX}o> }}"
                )
                assert status == 200 and outcome["changed"] is True
            assert len(instance.pool._replay) == 3
            # The floor is the generation of the newest dropped entry:
            # replay can only serve respawns at or past it.
            assert instance.pool._replay_floor == instance.pool._replay[0][0] - 1
            # The cap is a memory bound, not a data loss: the live
            # worker saw every broadcast and keeps serving all 5 rows.
            assert len(_live_rows(instance)) == 5
