"""Unit tests for the candidate-pruning policy (§6)."""

import pytest

from repro.bgp import WCOJoinEngine
from repro.core import CandidatePolicy, ThresholdMode
from repro.rdf import Dataset, IRI, TriplePattern, Variable
from repro.sparql.bags import Bag
from repro.storage import TripleStore

EX = "http://x/"
P = IRI(EX + "p")
X, Y = Variable("x"), Variable("y")


@pytest.fixture(scope="module")
def engine():
    d = Dataset()
    for i in range(100):
        d.add_spo(IRI(EX + f"s{i}"), P, IRI(EX + f"o{i}"))
    return WCOJoinEngine(TripleStore.from_dataset(d))


PATTERNS = [TriplePattern(X, P, Y)]


class TestModes:
    def test_off_returns_none(self, engine):
        policy = CandidatePolicy(ThresholdMode.OFF)
        assert not policy.enabled
        assert policy.candidates_for(engine, PATTERNS, Bag([{"x": 1}])) is None

    def test_fixed_threshold_is_fraction_of_store(self, engine):
        policy = CandidatePolicy(ThresholdMode.FIXED, fixed_fraction=0.05)
        assert policy.threshold(engine, PATTERNS) == pytest.approx(5.0)

    def test_adaptive_threshold_is_bgp_estimate(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        # The single pattern matches all 100 triples.
        assert policy.threshold(engine, PATTERNS) == pytest.approx(100.0)

    def test_adaptive_falls_back_for_empty_bgp(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE, fixed_fraction=0.01)
        assert policy.threshold(engine, []) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(TypeError):
            CandidatePolicy("full")
        with pytest.raises(ValueError):
            CandidatePolicy(ThresholdMode.FIXED, fixed_fraction=0)


class TestCandidateExtraction:
    def test_small_bag_produces_candidates(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        bag = Bag([{"x": 1}, {"x": 2}])
        cands = policy.candidates_for(engine, PATTERNS, bag)
        assert cands == {"x": {1, 2}}

    def test_bag_over_threshold_rejected(self, engine):
        policy = CandidatePolicy(ThresholdMode.FIXED, fixed_fraction=0.01)  # 1.0
        bag = Bag([{"x": 1}, {"x": 2}])
        assert policy.candidates_for(engine, PATTERNS, bag) is None

    def test_no_shared_variables(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        assert policy.candidates_for(engine, PATTERNS, Bag([{"z": 1}])) is None

    def test_none_bag(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        assert policy.candidates_for(engine, PATTERNS, None) is None

    def test_empty_bag(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        assert policy.candidates_for(engine, PATTERNS, Bag()) is None

    def test_uncertain_variable_excluded(self, engine):
        """A variable unbound in some solution must not restrict the BGP
        (an unbound variable joins with anything)."""
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        bag = Bag([{"x": 1, "y": 5}, {"y": 6}])  # x uncertain
        cands = policy.candidates_for(engine, PATTERNS, bag)
        assert cands == {"y": {5, 6}}

    def test_predicate_only_variable_not_restricted(self, engine):
        policy = CandidatePolicy(ThresholdMode.ADAPTIVE)
        patterns = [TriplePattern(X, Variable("pp"), Y)]
        cands = policy.candidates_for(engine, patterns, Bag([{"pp": 3}]))
        assert cands is None
