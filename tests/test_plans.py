"""Unit tests for join-order planning helpers."""

from repro.bgp import connected_components, greedy_pattern_order
from repro.rdf import IRI, TriplePattern, Variable

P = IRI("http://x/p")
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")

T_XY = TriplePattern(X, P, Y)
T_YZ = TriplePattern(Y, P, Z)
T_ZW = TriplePattern(Z, P, W)
T_W = TriplePattern(W, P, IRI("http://x/c"))


class TestConnectedComponents:
    def test_single_chain(self):
        components = connected_components([T_XY, T_YZ, T_ZW])
        assert len(components) == 1
        assert len(components[0]) == 3

    def test_disconnected(self):
        a = TriplePattern(X, P, Y)
        b = TriplePattern(Z, P, W)
        components = connected_components([a, b])
        assert len(components) == 2

    def test_transitive_connection(self):
        # a-b share nothing, but both share with c.
        a = TriplePattern(X, P, IRI("http://x/1"))
        b = TriplePattern(Z, P, IRI("http://x/2"))
        c = TriplePattern(X, P, Z)
        components = connected_components([a, b, c])
        assert len(components) == 1

    def test_predicate_variable_does_not_connect(self):
        a = TriplePattern(X, W, IRI("http://x/1"))  # W at predicate position
        b = TriplePattern(Y, W, IRI("http://x/2"))
        assert len(connected_components([a, b])) == 2

    def test_empty(self):
        assert connected_components([]) == []


class TestGreedyOrder:
    def test_most_selective_first(self):
        counts = {T_XY: 100.0, T_YZ: 5.0, T_ZW: 50.0}
        order = greedy_pattern_order(list(counts), counts.get)
        assert order[0] == T_YZ

    def test_connectivity_respected(self):
        # T_W is cheapest but disconnected from T_XY; within the chain
        # component every subsequent pattern must share a variable with
        # what is already placed.
        counts = {T_XY: 10.0, T_YZ: 20.0, T_ZW: 30.0, T_W: 1.0}
        order = greedy_pattern_order([T_XY, T_YZ, T_ZW], counts.get)
        placed_vars = {v.name for v in order[0].join_variables()}
        for pattern in order[1:]:
            pattern_vars = {v.name for v in pattern.join_variables()}
            assert pattern_vars & placed_vars
            placed_vars |= pattern_vars

    def test_component_order_by_cheapest_member(self):
        cheap_island = TriplePattern(W, P, IRI("http://x/c"))
        counts = {T_XY: 10.0, T_YZ: 20.0, cheap_island: 1.0}
        order = greedy_pattern_order([T_XY, T_YZ, cheap_island], counts.get)
        assert order[0] == cheap_island

    def test_all_patterns_kept(self):
        patterns = [T_XY, T_YZ, T_ZW, T_W]
        order = greedy_pattern_order(patterns, lambda p: 1.0)
        assert sorted(map(repr, order)) == sorted(map(repr, patterns))
