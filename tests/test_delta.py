"""Delta overlay equivalence: frozen base + pending writes == rebuild.

The overlay must answer the *complete* frozen read interface over the
logical set ``(base − tombstones) ∪ adds`` exactly as a
:class:`FrozenTripleIndexes` rebuilt from that set would — that is what
lets the sorted-run execution layer (merge joins, galloping, leapfrog)
keep running over pending writes without a thaw.  These tests drive
randomized write sequences and compare every read entry point against
the rebuilt reference.
"""

from __future__ import annotations

import random

import pytest

from repro.storage.delta import DeltaLayer, DeltaOverlayIndexes
from repro.storage.indexes import FrozenTripleIndexes

IDS = range(1, 7)


def _freeze(triples):
    if not triples:
        return FrozenTripleIndexes.from_columns([], [], [])
    s_col, p_col, o_col = zip(*sorted(triples))
    return FrozenTripleIndexes.from_columns(s_col, p_col, o_col)


def _random_triple(rng):
    return (rng.choice(IDS), rng.choice(IDS), rng.choice(IDS))


def _build_overlay(seed, base_size=60, operations=150):
    """Random base + random interleaved writes, with a set-based mirror."""
    rng = random.Random(seed)
    base_set = {_random_triple(rng) for _ in range(base_size)}
    overlay = DeltaOverlayIndexes(_freeze(base_set))
    mirror = set(base_set)
    for _ in range(operations):
        triple = _random_triple(rng)
        if rng.random() < 0.55:
            changed = overlay.delta_insert(triple)
            assert changed == (triple not in mirror)
            mirror.add(triple)
        else:
            changed = overlay.delta_delete(triple)
            assert changed == (triple in mirror)
            mirror.discard(triple)
    return overlay, mirror


def _assert_equivalent(overlay, reference):
    assert len(overlay) == len(reference)
    assert overlay.all_triples() == reference.all_triples()
    bindings = []
    for s in (*IDS, None):
        for p in (*IDS, None):
            for o in (*IDS, None):
                bindings.append((s, p, o))
    for s, p, o in bindings:
        assert overlay.count(s, p, o) == reference.count(s, p, o), (s, p, o)
        assert list(overlay.scan(s, p, o)) == list(reference.scan(s, p, o)), (s, p, o)
        got = overlay.single_variable_run(s, p, o)
        want = reference.single_variable_run(s, p, o)
        assert (got is None) == (want is None)
        if got is not None:
            assert list(got) == list(want), (s, p, o)
    for a in IDS:
        for b in IDS:
            assert list(overlay.object_run(a, b)) == list(reference.object_run(a, b))
            assert list(overlay.subject_run(a, b)) == list(reference.subject_run(a, b))
            assert list(overlay.predicate_run(a, b)) == list(
                reference.predicate_run(a, b)
            )
            values, start, stop = overlay.object_span(a, b)
            assert list(values[start:stop]) == list(overlay.object_run(a, b))
            assert overlay.objects_for_sp(a, b) == reference.objects_for_sp(a, b)
            assert overlay.subjects_for_po(a, b) == reference.subjects_for_po(a, b)
            assert overlay.predicates_for_so(a, b) == reference.predicates_for_so(a, b)
    for x in IDS:
        assert overlay.po_for_s(x) == reference.po_for_s(x)
        assert overlay.so_for_p(x) == reference.so_for_p(x)
        assert overlay.sp_for_o(x) == reference.sp_for_o(x)
        got_s, got_o = overlay._predicate_sets(x)
        want_s, want_o = reference._predicate_sets(x)
        assert list(got_s) == list(want_s)
        assert list(got_o) == list(want_o)


@pytest.mark.parametrize("seed", range(12))
def test_overlay_matches_rebuilt_reference(seed):
    overlay, mirror = _build_overlay(seed)
    reference = _freeze(mirror)
    _assert_equivalent(overlay, reference)
    # Membership agrees on hits and misses alike.
    rng = random.Random(seed + 1000)
    for _ in range(50):
        triple = _random_triple(rng)
        assert (triple in overlay) == (triple in mirror)


@pytest.mark.parametrize("seed", range(12))
def test_collapse_round_trips(seed):
    overlay, mirror = _build_overlay(seed)
    collapsed = overlay.collapse()
    assert type(collapsed) is FrozenTripleIndexes
    collapsed.validate_sorted()
    assert collapsed.all_triples() == sorted(mirror)
    # permutation_arrays over the merged view feed the snapshot writer;
    # they must round-trip through a fresh frozen store.
    rebuilt = FrozenTripleIndexes(*overlay.permutation_arrays())
    rebuilt.validate_sorted()
    assert rebuilt.all_triples() == sorted(mirror)


def test_untouched_ranges_are_zero_copy():
    base = _freeze({(1, 1, 1), (1, 1, 3), (2, 2, 2)})
    overlay = DeltaOverlayIndexes(base)
    # No pending writes at all: the base run comes back unchanged.
    assert overlay.object_run(1, 1).values is base.object_run(1, 1).values
    overlay.delta_insert((2, 2, 5))
    # Writes elsewhere must not de-optimize an untouched range.
    assert overlay.object_run(1, 1).values is base.object_run(1, 1).values
    assert list(overlay.object_run(2, 2)) == [2, 5]


def test_merged_run_is_cached_until_next_write():
    overlay = DeltaOverlayIndexes(_freeze({(1, 1, 1), (1, 1, 3)}))
    overlay.delta_insert((1, 1, 2))
    first = overlay.object_run(1, 1)
    assert list(first) == [1, 2, 3]
    assert overlay.object_run(1, 1) is first
    overlay.delta_insert((1, 1, 4))
    assert list(overlay.object_run(1, 1)) == [1, 2, 3, 4]


def test_pending_counts_and_invariants():
    base = {(1, 1, 1), (2, 2, 2)}
    overlay = DeltaOverlayIndexes(_freeze(base))
    assert overlay.pending == (0, 0)
    overlay.delta_insert((3, 3, 3))
    overlay.delta_delete((1, 1, 1))
    assert overlay.pending == (1, 1)
    assert len(overlay) == 2
    # Un-tombstoning restores the base triple without touching adds.
    assert overlay.delta_insert((1, 1, 1)) is True
    assert overlay.pending == (1, 0)
    # Deleting a pending add cancels it instead of tombstoning.
    assert overlay.delta_delete((3, 3, 3)) is True
    assert overlay.pending == (0, 0)
    assert sorted(overlay.all_triples()) == sorted(base)


def test_stacking_overlays_is_rejected():
    overlay = DeltaOverlayIndexes(_freeze({(1, 1, 1)}))
    with pytest.raises(TypeError):
        DeltaOverlayIndexes(overlay)


def test_direct_insert_still_raises():
    overlay = DeltaOverlayIndexes(_freeze({(1, 1, 1)}))
    with pytest.raises(TypeError):
        overlay.insert((2, 2, 2))


def test_delta_layer_seal_tracks_version():
    layer = DeltaLayer()
    assert layer.sealed_adds() is None
    layer.adds.add((1, 1, 1))
    layer.touch()
    sealed = layer.sealed_adds()
    assert sealed is not None and sealed.all_triples() == [(1, 1, 1)]
    assert layer.sealed_adds() is sealed
