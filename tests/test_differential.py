"""Differential suite: optimized engines vs. the naive oracle.

Each seed deterministically generates a small dataset plus a random
query, evaluates it with the naive bottom-up oracle (``tests/oracle.py``,
decoded term rows, nested-loop joins) and with the full optimized stack
— both BGP engines, cost-driven BE-tree transformations AND candidate
pruning enabled (``mode="full"``), filter/modifier pushdown on — and
asserts exact bag equality.

The store is *frozen* (sorted permutation arrays), so the optimized
runs exercise the sorted-run layer: merge joins, galloping semi-joins,
leapfrog extension and sorted-array candidate pruning.  Each seed is
additionally executed with ``sorted_runs=False`` — the classic
hash-join / set-candidate paths over the same frozen store — and the
two configurations are asserted row-set-identical, which is the
merge ≡ hash / gallop ≡ set equivalence proof across both engines ×
all 300 seeds.

Result comparison is modifier-aware:

- no LIMIT/OFFSET → exact multiset equality;
- ORDER BY → additionally, the per-row sort-key sequences must match
  (keys are generated over projected variables only, so tied rows carry
  identical keys and any key-respecting order is acceptable);
- LIMIT/OFFSET without ORDER BY → SPARQL leaves *which* page is
  returned implementation-defined, so the checks are: exact expected
  cardinality, multiset containment in the full (pre-slice) oracle
  result, and pairwise distinctness under DISTINCT.

300 seeds × {paper fragment, extended fragment} are generated; the
suite asserts that well over 200 of them execute (the circuit breaker
for cartesian blowups skips only a handful).
"""

from __future__ import annotations

import random

import pytest

from repro import SparqlUOEngine
from repro.rdf import Dataset, Triple
from repro.storage import FrozenTripleIndexes, TripleStore
from repro.sparql.expressions import order_key_for_binding

from . import oracle
from .strategies import (
    _OBJECTS,
    _PREDICATES,
    _SUBJECTS,
    random_aggregate_query,
    random_dataset,
    random_query,
)

ENGINES = ("wco", "hashjoin")
SEEDS = range(150)

#: Executed (non-skipped) query count, asserted ≥ 200 at session end.
_executed = {"count": 0, "attempted": 0}


def _key_sequence(query, rows):
    return [
        tuple(order_key_for_binding(c.expression, mu) for c in query.order_by)
        for mu in rows
    ]


def check_equivalent(query, expected: oracle.OracleResult, result, context: str):
    rows = [dict(mu) for mu in result]
    assert sorted(result.variables) == sorted(expected.variables), context
    if query.limit is None and not query.offset:
        assert oracle.as_counter(rows) == oracle.as_counter(expected.rows), context
    else:
        assert len(rows) == len(expected.rows), context
        assert oracle.contained_in(rows, expected.full), context
        if query.deduplicates:
            assert max(oracle.as_counter(rows).values(), default=1) == 1, context
    if query.order_by:
        assert _key_sequence(query, rows) == _key_sequence(query, expected.rows), context


def _run_differential(seed: int, extended: bool) -> None:
    _executed["attempted"] += 1
    rng = random.Random(seed * 2 + int(extended))
    dataset = random_dataset(rng, size=rng.randint(15, 32))
    query = random_query(rng, extended=extended)
    try:
        expected = oracle.execute(query, dataset)
    except oracle.OracleBlowup:
        pytest.skip("cartesian blowup (deterministic circuit breaker)")
    store = TripleStore.from_dataset(dataset).freeze()
    for engine_name in ENGINES:
        engine = SparqlUOEngine(store, bgp_engine=engine_name, mode="full")
        result = engine.execute(query)
        context = f"seed={seed} extended={extended} engine={engine_name}"
        check_equivalent(query, expected, result, context)
        # The sorted-run layer (merge joins, galloping pruning) must be
        # row-set-identical to the classic hash/set paths on the same
        # frozen store; modifier-free queries compare as exact bags,
        # paged ones against the same oracle invariants (the chosen
        # page is implementation-defined, so bags may legally differ).
        baseline = SparqlUOEngine(
            store, bgp_engine=engine_name, mode="full", sorted_runs=False
        )
        base_result = baseline.execute(query)
        if query.limit is None and not query.offset:
            assert base_result.solutions == result.solutions, context
        else:
            check_equivalent(query, expected, base_result, context + " sorted_runs=False")
    _executed["count"] += 1


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_paper_fragment(seed):
    """BGP / UNION / OPTIONAL queries (PR 1 pipeline revalidation)."""
    _run_differential(seed, extended=False)


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_extended_fragment(seed):
    """FILTER + DISTINCT/ORDER BY/LIMIT/OFFSET queries."""
    _run_differential(seed, extended=True)


def test_differential_volume():
    """≥200 random queries must actually have executed (not skipped).

    Only meaningful when the whole suite ran in this process; under a
    selective run (``-k``, ``--lf``) or a sharded one (xdist workers
    each see a fraction of the seeds) the counter is partial, so the
    volume assertion is skipped rather than failing spuriously.
    """
    total = 2 * len(SEEDS)
    if _executed["attempted"] < total:
        pytest.skip(f"partial run: {_executed['attempted']}/{total} seeds attempted")
    assert _executed["count"] >= 200, _executed["count"]


# ----------------------------------------------------------------------
# aggregates: GROUP BY / COUNT / SUM / MIN / MAX / AVG vs the naive
# dict-based grouping oracle
# ----------------------------------------------------------------------
AGG_SEEDS = range(300)


@pytest.mark.parametrize("seed", AGG_SEEDS)
def test_differential_aggregates(seed):
    """Random aggregate queries, bag-identical across every engine
    configuration.

    Each seed runs through both BGP engines × batch kernels on/off ×
    sorted runs on/off (8 configurations) against the naive grouping
    oracle.  The generator leans on the zero-decode path's edge cases:
    UNBOUND grouping keys from OPTIONAL branches, never-bound aggregated
    columns, non-numeric SUM/AVG inputs, DISTINCT inside aggregates and
    the implicit single group over empty inputs (COUNT must be 0).
    """
    rng = random.Random(5000 + seed)
    dataset = random_dataset(rng, size=rng.randint(12, 30))
    query = random_aggregate_query(rng)
    try:
        expected = oracle.execute(query, dataset)
    except oracle.OracleBlowup:
        pytest.skip("cartesian blowup (deterministic circuit breaker)")
    store = TripleStore.from_dataset(dataset).freeze()
    for engine_name in ENGINES:
        for kernels in (True, False):
            for sorted_runs in (True, False):
                engine = SparqlUOEngine(
                    store,
                    bgp_engine=engine_name,
                    mode="full",
                    kernels=kernels,
                    sorted_runs=sorted_runs,
                )
                context = (
                    f"agg seed={seed} engine={engine_name} "
                    f"kernels={kernels} sorted_runs={sorted_runs}"
                )
                check_equivalent(query, expected, engine.execute(query), context)


# ----------------------------------------------------------------------
# live updates: interleaved writes-then-queries vs a set-based oracle
# ----------------------------------------------------------------------
LIVE_SEEDS = range(40)
LIVE_ROUNDS = 4


def _random_write_triple(rng):
    return Triple(
        rng.choice(_SUBJECTS), rng.choice(_PREDICATES), rng.choice(_OBJECTS)
    )


@pytest.mark.parametrize("seed", LIVE_SEEDS)
def test_differential_live_updates(seed, tmp_path):
    """Random INSERT/DELETE batches interleaved with random queries.

    A plain Python set mirrors the logical triple set; after every
    write batch a random query runs through both BGP engines × sorted
    runs on/off over the *same live store* (frozen base + delta
    overlay, never thawed) and must match the naive oracle evaluated
    over the mirror.  This is the delta layer's end-to-end equivalence
    proof: pending adds and tombstones are indistinguishable from a
    store rebuilt from scratch.

    Every batch is additionally journalled to a write-ahead log as
    SPARQL UPDATE text, and a final crash/recover round replays the
    log onto the *pre-update* snapshot via ``from_snapshot(wal=…)`` —
    the recovered store must answer exactly like the live one that
    never crashed (WAL replay is equivalence-preserving, not just
    count-preserving).
    """
    from repro.storage.wal import WriteAheadLog

    rng = random.Random(9000 + seed)
    dataset = random_dataset(rng, size=rng.randint(10, 24))
    base_store = TripleStore.from_dataset(dataset)
    snap = str(tmp_path / "live.snap")
    base_store.save(snap)
    store = base_store.freeze()
    wal = WriteAheadLog(str(tmp_path / "live.wal"), policy="off")
    mirror = set(dataset)
    last_query = None
    # One generation per journalled operation, the way a serving parent
    # commits: replay applies each frame as its own engine.update.
    journal_generation = store.generation
    for round_no in range(LIVE_ROUNDS):
        inserts = [_random_write_triple(rng) for _ in range(rng.randint(0, 6))]
        present = sorted(mirror, key=str)
        deletes = rng.sample(present, k=min(len(present), rng.randint(0, 4)))
        deletes += [_random_write_triple(rng) for _ in range(rng.randint(0, 2))]
        expected_removed = len(mirror & set(deletes))
        expected_added = len(set(inserts) - (mirror - set(deletes)))
        added, removed = store.apply_update(inserts=inserts, deletes=deletes)
        assert (added, removed) == (expected_added, expected_removed)
        mirror -= set(deletes)
        mirror |= set(inserts)
        assert len(store) == len(mirror)
        # The store must still be frozen-shaped — writes never thaw it.
        assert isinstance(store.indexes, FrozenTripleIndexes)
        # Journal the batch exactly as a serving parent would: deletes
        # first, then inserts (apply_update's delete-then-insert order).
        if deletes:
            journal_generation += 1
            wal.append(
                journal_generation,
                "DELETE DATA { " + " ".join(t.n3() for t in deletes) + " }",
            )
        if inserts:
            journal_generation += 1
            wal.append(
                journal_generation,
                "INSERT DATA { " + " ".join(t.n3() for t in inserts) + " }",
            )

        query = random_query(rng, extended=bool(seed % 2))
        try:
            expected = oracle.execute(query, Dataset(mirror))
        except oracle.OracleBlowup:
            continue
        last_query = (query, expected)
        for engine_name in ENGINES:
            for sorted_runs in (True, False):
                engine = SparqlUOEngine(
                    store,
                    bgp_engine=engine_name,
                    mode="full",
                    sorted_runs=sorted_runs,
                )
                context = (
                    f"seed={seed} round={round_no} engine={engine_name} "
                    f"sorted_runs={sorted_runs}"
                )
                check_equivalent(query, expected, engine.execute(query), context)

    # Crash/recover round: the process dies with the delta overlay
    # never compacted; the snapshot on disk still holds the original
    # dataset and the WAL holds every batch.  Recovery must rebuild the
    # exact live state.
    wal.close()
    for engine_name in ENGINES:
        for sorted_runs in (True, False):
            recovered = SparqlUOEngine.from_snapshot(
                snap,
                wal=wal.path,
                bgp_engine=engine_name,
                mode="full",
                sorted_runs=sorted_runs,
            )
            context = (
                f"seed={seed} crash-recover engine={engine_name} "
                f"sorted_runs={sorted_runs}"
            )
            assert len(recovered.store) == len(mirror), context
            if last_query is not None:
                query, expected = last_query
                check_equivalent(query, expected, recovered.execute(query), context)
            recovered.store.close()


TRACE_SEEDS = range(40)


@pytest.mark.parametrize("seed", TRACE_SEEDS)
def test_differential_tracing_transparent(seed):
    """Arming a tracer must not change a single result row.

    The obs layer rides inside every operator (scan, join, filter,
    group fold, decode); this replays random queries with and without
    an armed tracer on the same engine and asserts bag identity, plus a
    well-formed span tree on every traced run.
    """
    from repro.obs import trace as obs_trace

    rng = random.Random(11000 + seed)
    dataset = random_dataset(rng, size=rng.randint(15, 32))
    query = random_query(rng, extended=bool(seed % 2))
    store = TripleStore.from_dataset(dataset).freeze()
    for engine_name in ENGINES:
        engine = SparqlUOEngine(store, bgp_engine=engine_name, mode="full")
        plain = engine.execute(query)
        tracer = obs_trace.arm(obs_trace.Tracer("query"))
        try:
            traced = engine.execute(query)
        finally:
            tree = tracer.finish()
            obs_trace.disarm()
        context = f"seed={seed} engine={engine_name}"
        # Same engine, same frozen store, deterministic evaluation:
        # even a LIMIT page must be identical run to run.
        assert traced.solutions == plain.solutions, context

        def well_formed(node, path="root"):
            assert isinstance(node.get("name"), str) and node["name"], (context, path)
            assert node.get("ms") is not None and node["ms"] >= 0, (context, path)
            for child in node.get("children", ()):
                well_formed(child, path + "/" + node["name"])

        well_formed(tree)
