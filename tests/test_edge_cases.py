"""Cross-module edge cases not covered by the per-module suites."""

import pytest

from repro.baselines import LBREngine
from repro.bgp import WCOJoinEngine
from repro.core import (
    BETree,
    CostModel,
    SparqlUOEngine,
    multi_level_transform,
    validate_tree,
)
from repro.datasets import DBPEDIA_QUERIES, generate_dbpedia
from repro.rdf import Dataset, IRI, Triple
from repro.sparql import SelectQuery, execute_query, parse_group, parse_query
from repro.storage import TripleStore

EX = "http://example.org/"


class TestNaryUnionTransforms:
    """Theorem 1 'trivially extends' to n-ary UNIONs — verify it does."""

    def fixture_tree(self):
        return BETree.from_group(
            parse_group(
                "{ ?x <http://example.org/headOf> ?d "
                "  { ?x <http://example.org/name> ?n } "
                "  UNION { ?x <http://example.org/type> ?n } "
                "  UNION { ?x <http://example.org/teacherOf> ?n } }"
            )
        )

    def test_merge_reaches_all_three_branches(self, university_store):
        from repro.core.transform import can_merge, perform_merge

        tree = self.fixture_tree()
        p1, union = tree.root.children
        assert can_merge(tree.root, p1, union)
        perform_merge(tree.root, p1, union)
        for branch in union.branches:
            assert any(len(b.patterns) == 2 for b in branch.bgp_children())
        validate_tree(tree)

    def test_nary_semantics_preserved(self, university_store, university_dataset):
        tree = self.fixture_tree()
        before = execute_query(SelectQuery(None, tree.to_group()), university_dataset)
        multi_level_transform(CostModel(WCOJoinEngine(university_store)), tree)
        after = execute_query(SelectQuery(None, tree.to_group()), university_dataset)
        assert before == after


class TestRepeatedTransformations:
    """Transforming an already-transformed tree must be a no-op-or-safe."""

    def test_idempotent_on_benchmark_query(self, university_store, university_dataset):
        text = (
            "{ ?x <http://example.org/headOf> ?d "
            "  { ?x <http://example.org/name> ?n } UNION { ?x <http://example.org/type> ?n } "
            "  OPTIONAL { ?s <http://example.org/advisor> ?x } }"
        )
        tree = BETree.from_group(parse_group(text))
        model = CostModel(WCOJoinEngine(university_store))
        multi_level_transform(model, tree)
        first = execute_query(SelectQuery(None, tree.to_group()), university_dataset)
        report = multi_level_transform(model, tree)
        second = execute_query(SelectQuery(None, tree.to_group()), university_dataset)
        assert first == second
        validate_tree(tree)
        # The second pass may fire extra injects, but never invalidates.
        assert report.total_delta <= 0


class TestStoreMutationMidSession:
    def test_results_reflect_inserts(self):
        store = TripleStore()
        p = IRI(EX + "p")
        store.add(Triple(IRI(EX + "a"), p, IRI(EX + "b")))
        engine = SparqlUOEngine(store, mode="full")
        query = f"SELECT ?x WHERE {{ ?x <{EX}p> ?y }}"
        assert len(engine.execute(query)) == 1
        store.add(Triple(IRI(EX + "c"), p, IRI(EX + "d")))
        assert len(engine.execute(query)) == 2

    def test_statistics_refresh_after_insert(self):
        store = TripleStore()
        p = IRI(EX + "p")
        store.add(Triple(IRI(EX + "a"), p, IRI(EX + "b")))
        assert store.statistics.for_predicate(store.lookup(p)).triples == 1
        store.add(Triple(IRI(EX + "a"), p, IRI(EX + "c")))
        assert store.statistics.for_predicate(store.lookup(p)).triples == 2


class TestLBROnDBpedia:
    @pytest.fixture(scope="class")
    def store(self):
        return TripleStore.from_dataset(generate_dbpedia(articles=400))

    @pytest.mark.parametrize("name", ["q2.1", "q2.2", "q2.3", "q2.4", "q2.5", "q2.6"])
    def test_lbr_matches_full_on_dbpedia(self, store, name):
        full = SparqlUOEngine(store, mode="full").execute(DBPEDIA_QUERIES[name])
        lbr = LBREngine(store).execute(DBPEDIA_QUERIES[name])
        assert lbr.solutions == full.solutions, name


class TestOptionalFirstGroupPruning:
    """Regression: candidates must not prune an OPTIONAL that
    left-joins against the identity (a nested group *starting* with
    OPTIONAL).  Pruning with the enclosing context's candidates could
    flip the optional side from nonempty — rows that merely fail to
    join later — to empty, and ⟕ then wrongly kept the bare row
    (found by the differential property tests on mode=full)."""

    QUERY = (
        "SELECT * WHERE { ?v1 ?v0 ?v1 . "
        "{ OPTIONAL { ?v0 ?v1 ?v2 } OPTIONAL { ?v0 ?v0 ?v0 } } }"
    )

    @pytest.fixture
    def tiny_dataset(self):
        d = Dataset()
        d.add_spo(IRI("http://x.test/s0"), IRI("http://x.test/p0"), IRI("http://x.test/s0"))
        d.add_spo(IRI("http://x.test/s1"), IRI("http://x.test/p1"), IRI("http://x.test/o1"))
        return d

    @pytest.mark.parametrize("bgp_engine", ["wco", "hashjoin"])
    @pytest.mark.parametrize("mode", ["base", "tt", "cp", "full"])
    def test_matches_reference_in_every_mode(self, tiny_dataset, bgp_engine, mode):
        reference = execute_query(parse_query(self.QUERY), tiny_dataset)
        engine = SparqlUOEngine.for_dataset(tiny_dataset, bgp_engine=bgp_engine, mode=mode)
        assert engine.execute(self.QUERY).solutions == reference

    def test_pruning_still_fires_with_real_left_rows(
        self, university_store, university_dataset
    ):
        # The fix must not disable §6's pruning where it is sound: an
        # OPTIONAL evaluated after actual left rows still receives
        # candidates from them.
        engine = SparqlUOEngine(university_store, bgp_engine="wco", mode="full")
        query = (
            f"SELECT * WHERE {{ <{EX}prof0_0> <{EX}teacherOf> ?y "
            f"OPTIONAL {{ ?z <{EX}takesCourse> ?y . ?z <{EX}name> ?n }} }}"
        )
        result = engine.execute(query)
        reference = execute_query(parse_query(query), university_dataset)
        assert result.solutions == reference


class TestDegenerateQueries:
    def test_single_ground_triple_query(self, university_store):
        engine = SparqlUOEngine(university_store, mode="full")
        hit = engine.execute(
            f"SELECT * WHERE {{ <{EX}prof0_0> <{EX}worksFor> <{EX}dept0> }}"
        )
        assert len(hit) == 1 and list(hit) == [{}]
        miss = engine.execute(
            f"SELECT * WHERE {{ <{EX}prof0_0> <{EX}worksFor> <{EX}dept1> }}"
        )
        assert len(miss) == 0

    def test_union_of_identical_branches_doubles(self, university_store):
        engine = SparqlUOEngine(university_store, mode="full")
        single = engine.execute(f"SELECT * WHERE {{ ?x <{EX}headOf> ?d }}")
        doubled = engine.execute(
            f"SELECT * WHERE {{ {{ ?x <{EX}headOf> ?d }} UNION {{ ?x <{EX}headOf> ?d }} }}"
        )
        assert len(doubled) == 2 * len(single)

    def test_optional_of_empty_group(self, university_store):
        engine = SparqlUOEngine(university_store, mode="full")
        result = engine.execute(
            f"SELECT * WHERE {{ ?x <{EX}headOf> ?d OPTIONAL {{ }} }}"
        )
        assert len(result) == 3

    def test_deeply_nested_groups(self, university_store):
        engine = SparqlUOEngine(university_store, mode="full")
        result = engine.execute(
            f"SELECT * WHERE {{ {{ {{ {{ ?x <{EX}headOf> ?d }} }} }} }}"
        )
        assert len(result) == 3

    def test_projection_of_never_bound_variable(self, university_store):
        engine = SparqlUOEngine(university_store, mode="full")
        result = engine.execute(f"SELECT ?ghost WHERE {{ ?x <{EX}headOf> ?d }}")
        assert len(result) == 3
        assert all(row == {} for row in result)

    def test_empty_store(self):
        engine = SparqlUOEngine(TripleStore(), mode="full")
        assert len(engine.execute("SELECT * WHERE { ?s ?p ?o }")) == 0

    def test_query_against_empty_store_with_optional(self):
        engine = SparqlUOEngine(TripleStore(), mode="full")
        result = engine.execute(
            "SELECT * WHERE { OPTIONAL { ?s ?p ?o } }"
        )
        assert len(result) == 1  # the identity solution survives
