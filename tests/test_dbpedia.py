"""Unit tests for the DBpedia-like generator."""

import pytest

from repro.datasets import ANCHORS, DBpediaGenerator, generate_dbpedia
from repro.rdf import DBO, DBR, FOAF, OWL, PURL, RDF, RDFS, TriplePattern, Variable

X = Variable("x")


@pytest.fixture(scope="module")
def dbp():
    return generate_dbpedia(articles=600)


def count(dataset, pattern) -> int:
    return sum(1 for _ in dataset.match(pattern))


class TestAnchors:
    def test_anchor_resources_exist(self, dbp):
        for name in ANCHORS:
            anchor = DBR.term(name)
            assert count(dbp, TriplePattern(anchor, Variable("p"), Variable("o"))) > 0, name

    def test_anchors_have_concentrated_inlinks(self, dbp):
        anchor = DBR.term("Economic_system")
        inlinks = count(dbp, TriplePattern(X, DBO.wikiPageWikiLink, anchor))
        assert inlinks >= 40

    def test_air_masses_has_redirect(self, dbp):
        """q1.3 needs a resource sharing Air_masses' wiki page."""
        page_triples = list(
            dbp.match(TriplePattern(DBR.term("Air_masses"), FOAF.isPrimaryTopicOf, X))
        )
        assert page_triples
        page = page_triples[0].object
        topics = count(dbp, TriplePattern(page, FOAF.primaryTopic, X))
        assert topics >= 2  # the article and its redirect

    def test_functional_neuroimaging_categorized(self, dbp):
        anchor = DBR.term("Functional_neuroimaging")
        assert count(dbp, TriplePattern(anchor, PURL.subject, X)) > 0


class TestShape:
    def test_wikilink_dominates(self, dbp):
        """wikiPageWikiLink must be the heavy, low-selectivity predicate."""
        links = count(dbp, TriplePattern(X, DBO.wikiPageWikiLink, Variable("y")))
        labels = count(dbp, TriplePattern(X, RDFS.label, Variable("y")))
        assert links > labels

    def test_heavy_tail_out_degree(self, dbp):
        from collections import Counter

        degrees = Counter()
        for triple in dbp.match(TriplePattern(X, DBO.wikiPageWikiLink, Variable("y"))):
            degrees[triple.subject] += 1
        values = sorted(degrees.values(), reverse=True)
        # The top linker links at least 4× the median — a heavy tail.
        median = values[len(values) // 2]
        assert values[0] >= 4 * max(median, 1)

    def test_diverse_name_representation(self, dbp):
        names = count(dbp, TriplePattern(X, FOAF.name, Variable("n")))
        labels = count(dbp, TriplePattern(X, RDFS.label, Variable("n")))
        assert names > 0 and labels > 0
        assert names < labels  # only some articles carry foaf:name

    def test_incomplete_sameas(self, dbp):
        sameas_subjects = {
            t.subject for t in dbp.match(TriplePattern(X, OWL.sameAs, Variable("o")))
        }
        labeled_subjects = {
            t.subject for t in dbp.match(TriplePattern(X, RDFS.label, Variable("o")))
        }
        assert sameas_subjects and sameas_subjects < labeled_subjects


class TestSubPopulations:
    @pytest.mark.parametrize(
        "cls", ["PopulatedPlace", "Person", "SoccerPlayer", "Airport", "Settlement"]
    )
    def test_typed_populations_exist(self, dbp, cls):
        assert count(dbp, TriplePattern(X, RDF.type, DBO.term(cls))) > 0

    def test_airports_have_cities_and_iata(self, dbp):
        airports = [
            t.subject for t in dbp.match(TriplePattern(X, RDF.type, DBO.Airport))
        ]
        assert airports
        airport = airports[0]
        assert count(dbp, TriplePattern(airport, DBO.city, X)) == 1

    def test_species_have_phyla(self, dbp):
        assert count(dbp, TriplePattern(X, DBO.phylum, Variable("ph"))) > 0


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_dbpedia(articles=300, seed=3)
        b = generate_dbpedia(articles=300, seed=3)
        assert set(a) == set(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            DBpediaGenerator(articles=10)
