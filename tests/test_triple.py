"""Unit tests for triples, triple patterns and coalescability."""

import pytest

from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable, coalescable

S = IRI("http://x/s")
P = IRI("http://x/p")
O = IRI("http://x/o")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTriple:
    def test_components(self):
        t = Triple(S, P, O)
        assert t.subject == S and t.predicate == P and t.object == O

    def test_literal_object_ok(self):
        assert Triple(S, P, Literal("v")).object == Literal("v")

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            Triple(Literal("v"), P, O)

    def test_variable_anywhere_rejected(self):
        with pytest.raises(ValueError):
            Triple(X, P, O)
        with pytest.raises(ValueError):
            Triple(S, P, X)

    def test_non_iri_predicate_rejected(self):
        with pytest.raises(ValueError):
            Triple(S, Literal("p"), O)

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert len({Triple(S, P, O), Triple(S, P, O)}) == 1

    def test_n3(self):
        assert Triple(S, P, O).n3() == "<http://x/s> <http://x/p> <http://x/o> ."

    def test_iteration(self):
        assert list(Triple(S, P, O)) == [S, P, O]

    def test_immutable(self):
        t = Triple(S, P, O)
        with pytest.raises(AttributeError):
            t.subject = O


class TestTriplePattern:
    def test_variables(self):
        assert TriplePattern(X, P, Y).variables() == {X, Y}

    def test_join_variables_exclude_predicate(self):
        pattern = TriplePattern(X, Y, Z)
        assert pattern.join_variables() == {X, Z}

    def test_ground_check(self):
        assert TriplePattern(S, P, O).is_ground()
        assert not TriplePattern(X, P, O).is_ground()

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            TriplePattern(Literal("v"), P, O)

    def test_literal_predicate_rejected(self):
        with pytest.raises(ValueError):
            TriplePattern(S, Literal("v"), O)

    def test_matches_basic(self):
        assert TriplePattern(X, P, O).matches(Triple(S, P, O))
        assert not TriplePattern(X, P, S).matches(Triple(S, P, O))

    def test_matches_repeated_variable_requires_same_value(self):
        pattern = TriplePattern(X, P, X)
        assert pattern.matches(Triple(S, P, S))
        assert not pattern.matches(Triple(S, P, O))

    def test_substitute(self):
        pattern = TriplePattern(X, P, Y)
        out = pattern.substitute({X: S})
        assert out == TriplePattern(S, P, Y)

    def test_substitute_leaves_unbound(self):
        pattern = TriplePattern(X, P, Y)
        assert pattern.substitute({}) == pattern

    def test_equality_and_hash(self):
        assert TriplePattern(X, P, Y) == TriplePattern(X, P, Y)
        assert hash(TriplePattern(X, P, Y)) == hash(TriplePattern(X, P, Y))


class TestCoalescable:
    def test_shared_subject_variable(self):
        assert coalescable(TriplePattern(X, P, O), TriplePattern(X, P, Y))

    def test_subject_object_cross(self):
        assert coalescable(TriplePattern(X, P, Y), TriplePattern(Y, P, Z))

    def test_no_shared_variable(self):
        assert not coalescable(TriplePattern(X, P, O), TriplePattern(Y, P, Z))

    def test_predicate_variable_does_not_count(self):
        # Definition 3 considers only subject/object positions.
        assert not coalescable(TriplePattern(S, X, O), TriplePattern(S, X, O))

    def test_shared_constant_does_not_count(self):
        assert not coalescable(TriplePattern(S, P, X), TriplePattern(S, P, Y))
