"""Bulk loader: equivalence with the reference N-Triples path."""

import io

import pytest

from repro.rdf import (
    Dataset,
    IRI,
    Literal,
    NTriplesParseError,
    load_ntriples,
    parse_ntriples_string,
)
from repro.rdf.ntriples import dump_ntriples, serialize_ntriples
from repro.storage import TripleStore, bulk_load_ntriples
from repro.storage.bulkload import iter_tokens

TRICKY = "\n".join(
    [
        "# a comment line",
        "",
        "<http://x/s1> <http://x/p> <http://x/o1> .",
        '<http://x/s1> <http://x/name> "plain" .',
        '<http://x/s2> <http://x/name> "hallo"@de .',
        '<http://x/s2> <http://x/age> "7"^^<http://www.w3.org/2001/XMLSchema#int> .',
        '_:b1 <http://x/p> _:b2 .',
        '<http://x/s3> <http://x/says> "esc \\"q\\" and \\\\ and \\n dot. inside" .',
        '<http://x/s.with.dots> <http://x/p> <http://x/o#frag> .',
        "<http://x/s1> <http://x/p> <http://x/o1> .  # duplicate + comment",
        '<http://x/s4> <http://x/says> "tab\\tsep" . # trailing comment',
    ]
)


def store_triples(store: TripleStore):
    return {store.dictionary.decode_triple(t) for t in store.indexes.all_triples()}


class TestEquivalence:
    def test_matches_reference_parser(self):
        reference = TripleStore.from_dataset(Dataset(parse_ntriples_string(TRICKY)))
        bulk = TripleStore.bulk_load(io.StringIO(TRICKY))
        assert len(bulk) == len(reference)
        assert store_triples(bulk) == store_triples(reference)

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(TRICKY, encoding="utf-8")
        bulk = TripleStore.bulk_load(str(path))
        reference = TripleStore.from_dataset(load_ntriples(str(path)))
        assert store_triples(bulk) == store_triples(reference)

    def test_duplicates_counted_not_stored(self):
        loader = bulk_load_ntriples(io.StringIO(TRICKY))
        assert loader.duplicates == 1
        assert len(loader) == 8

    def test_generated_dataset_roundtrip(self):
        from repro.datasets import generate_lubm

        dataset = generate_lubm(universities=1)
        text = serialize_ntriples(dataset)
        bulk = TripleStore.bulk_load(io.StringIO(text))
        assert len(bulk) == len(dataset)
        assert store_triples(bulk) == set(dataset)

    def test_queryable_end_to_end(self, tmp_path):
        from repro.core import SparqlUOEngine

        path = tmp_path / "data.nt"
        path.write_text(TRICKY, encoding="utf-8")
        engine = SparqlUOEngine(TripleStore.bulk_load(str(path)))
        result = engine.execute("SELECT ?s WHERE { ?s <http://x/p> ?o }")
        assert len(result) == 3


class TestTokenFastPath:
    @pytest.mark.parametrize(
        "line,expected",
        [
            (
                "<http://x/s> <http://x/p> <http://x/o> .",
                ("<http://x/s>", "<http://x/p>", "<http://x/o>"),
            ),
            (
                '_:b1 <http://x/p> "lit"@en .',
                ("_:b1", "<http://x/p>", '"lit"@en'),
            ),
            (
                '<http://x/s> <http://x/p> "x"^^<http://x/dt> . # c',
                ("<http://x/s>", "<http://x/p>", '"x"^^<http://x/dt>'),
            ),
        ],
    )
    def test_accepts(self, line, expected):
        assert iter_tokens(line) == expected

    @pytest.mark.parametrize(
        "line",
        [
            "<http://x/s> <http://x/p> <http://x/o>",  # missing dot
            "<http://x/s> <http://x/p> .",  # missing object
            '<http://x/s> "lit" <http://x/o> .',  # literal predicate
            "just garbage",
        ],
    )
    def test_rejects_malformed(self, line):
        assert iter_tokens(line) is None

    def test_slow_path_still_rejects(self):
        with pytest.raises(NTriplesParseError):
            bulk_load_ntriples(io.StringIO("<http://x/s> <http://x/p> .\n"))

    def test_slow_path_handles_unicode_blank_labels(self):
        # isalnum() accepts unicode labels the fast-path regex does not;
        # both loaders must agree.
        line = "_:bé <http://x/p> <http://x/o> ."
        assert iter_tokens(line) is None  # falls back...
        bulk = TripleStore.bulk_load(io.StringIO(line))
        assert len(bulk) == 1  # ...and the slow path accepts it

    def test_error_reports_line_number(self):
        lines = io.StringIO("<http://x/s> <http://x/p> <http://x/o> .\nbroken\n")
        with pytest.raises(NTriplesParseError) as excinfo:
            bulk_load_ntriples(lines)
        assert excinfo.value.line_number == 2


class TestBulkIntoSnapshot:
    def test_bulk_load_then_save_then_load(self, tmp_path):
        nt_path = tmp_path / "data.nt"
        d = Dataset()
        for i in range(50):
            d.add_spo(IRI(f"http://x/s{i % 7}"), IRI("http://x/p"), Literal(f"v{i}"))
        dump_ntriples(d, str(nt_path))
        snap_path = tmp_path / "data.snap"
        store = TripleStore.bulk_load(str(nt_path))
        store.save(str(snap_path))
        loaded = TripleStore.load(str(snap_path))
        assert store_triples(loaded) == set(d)
